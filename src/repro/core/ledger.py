"""Chunk ledgers: the bookkeeping store behind every partitioner.

The ledger answers "which node holds this chunk and how big is it" and
maintains the per-node byte loads plus the running total.  Two
implementations share one interface:

* :class:`ArrayChunkLedger` (the default) interns every
  :class:`ChunkRef` to a dense integer id and keeps the per-chunk state
  in parallel numpy columns — bytes, owning node, and (when all refs
  share one arity) the chunk-key coordinates.  Batch commits, merges,
  and rebalance reads then become vector operations over those columns
  instead of per-ref dict traffic through Python-level ``__hash__``.
* :class:`DictChunkLedger` is the PR-1 dict ledger, kept bit-for-bit as
  the parity oracle (``tests/test_ledger.py`` drives both through
  identical op sequences).

Selection mirrors the scalar/batch contract of the placement layer: the
module default comes from the ``REPRO_LEDGER`` environment variable
(``array`` unless overridden), and :func:`ledger_mode` temporarily pins
a mode for tests.

Compaction
----------
Removed chunks leave their dense ids on a free list; under insert/expire
churn the columns therefore hold more slots than live chunks.
:meth:`ArrayChunkLedger.compact` re-interns the live refs into fresh,
exactly-sized columns once the dead-slot ratio crosses a configurable
threshold, bounding ledger memory over long churn-heavy runs — the
cluster triggers it from its reorganization cycle
(:meth:`repro.cluster.cluster.ElasticCluster.scale_out` /
:meth:`~repro.cluster.cluster.ElasticCluster.remove_chunks`; the
bounded-vs-unbounded behaviour is pinned by
``tests/test_ledger_compaction.py``).  The dict ledger never fragments,
so its :meth:`DictChunkLedger.compact` is a no-op with the same
signature.

Float semantics
---------------
Per-chunk sizes are stored and merged in batch order, so they stay
bit-identical between the two ledgers.  Per-node loads and the running
total accumulate the same bytes but may reassociate the additions
(vectorized reductions), so they agree only up to float ulps — the same
contract `place_batch` already documents.
"""

from __future__ import annotations

from collections.abc import Mapping
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import config as parity_config
from repro.arrays.chunk import ChunkRef
from repro.errors import PartitioningError

NodeId = int

#: Ledger modes accepted by :func:`make_ledger` / ``REPRO_LEDGER``.
LEDGER_MODES = parity_config.PARITY_FIELDS["ledger"][1]


def default_ledger_mode() -> str:
    """The process-wide ledger mode (shim over :func:`repro.config.mode`)."""
    return parity_config.mode("ledger")


@contextmanager
def ledger_mode(mode: str) -> Iterator[None]:
    """Temporarily pin the default ledger mode (parity tests).

    Legacy shim over :func:`repro.config.parity`; prefer
    ``parity(ledger=...)``.
    """
    if mode not in LEDGER_MODES:
        raise PartitioningError(
            f"unknown ledger mode {mode!r}; expected one of {LEDGER_MODES}"
        )
    with parity_config.parity(ledger=mode):
        yield


def make_ledger(mode: Optional[str], nodes: Sequence[NodeId]):
    """Construct a ledger of the requested (or default) mode."""
    mode = mode or default_ledger_mode()
    if mode == "dict":
        return DictChunkLedger(nodes)
    if mode == "array":
        return ArrayChunkLedger(nodes)
    raise PartitioningError(
        f"unknown ledger mode {mode!r}; expected one of {LEDGER_MODES}"
    )


class DictChunkLedger:
    """The dict-of-refs ledger (PR-1 structure), kept as parity oracle."""

    mode = "dict"

    def __init__(self, nodes: Sequence[NodeId]) -> None:
        self._assignment: Dict[ChunkRef, NodeId] = {}
        self._sizes: Dict[ChunkRef, float] = {}
        self._loads: Dict[NodeId, float] = {int(n): 0.0 for n in nodes}
        self._total: float = 0.0

    # -- nodes ---------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Register a node with zero load."""
        self._loads[int(node)] = 0.0

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is registered."""
        return node in self._loads

    def load_of(self, node: NodeId) -> float:
        """Bytes currently assigned to ``node``."""
        return self._loads[node]

    def node_loads(self) -> Dict[NodeId, float]:
        """A copy of the ``node -> bytes`` load map."""
        return dict(self._loads)

    # -- reads ---------------------------------------------------------
    def contains(self, ref: ChunkRef) -> bool:
        """Whether ``ref`` is currently placed."""
        return ref in self._assignment

    def get_node(self, ref: ChunkRef) -> Optional[NodeId]:
        """Node holding ``ref``, or ``None`` when never placed."""
        return self._assignment.get(ref)

    def node_of(self, ref: ChunkRef) -> NodeId:
        """Node holding ``ref`` (KeyError when never placed)."""
        return self._assignment[ref]

    def size_of(self, ref: ChunkRef) -> float:
        """Recorded bytes of ``ref`` (KeyError when never placed)."""
        return self._sizes[ref]

    @property
    def chunk_count(self) -> int:
        """Number of live chunks."""
        return len(self._assignment)

    @property
    def total_bytes(self) -> float:
        """All live chunk bytes (O(1) running counter)."""
        return self._total

    def assignment(self) -> Dict[ChunkRef, NodeId]:
        """A copy of the full chunk → node map."""
        return dict(self._assignment)

    def refs_on(self, node: NodeId) -> List[ChunkRef]:
        """Refs assigned to one node (iteration order)."""
        return [r for r, n in self._assignment.items() if n == node]

    def sizes_of(self, refs: Sequence[ChunkRef]) -> np.ndarray:
        """Bulk byte sizes of many placed refs."""
        sizes = self._sizes
        return np.fromiter(
            (sizes[r] for r in refs), dtype=np.float64, count=len(refs)
        )

    def key_column(
        self, refs: Sequence[ChunkRef], dim: int
    ) -> np.ndarray:
        """Bulk chunk-key coordinates of many refs along one dimension."""
        return np.fromiter(
            (r.key[dim] for r in refs), dtype=np.int64, count=len(refs)
        )

    # -- views (zero-cost: the dicts themselves) -----------------------
    def assignment_view(self) -> Mapping:
        return self._assignment

    def sizes_view(self) -> Mapping:
        return self._sizes

    def loads_view(self) -> Mapping:
        return self._loads

    # -- mutation ------------------------------------------------------
    def commit_new(
        self, ref: ChunkRef, size_bytes: float, node: NodeId
    ) -> None:
        """Record a first-time placement of ``ref`` on ``node``."""
        self._assignment[ref] = node
        self._sizes[ref] = size_bytes
        self._loads[node] += size_bytes
        self._total += size_bytes

    def merge(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        """Add bytes to an already-placed chunk; returns its node."""
        node = self._assignment[ref]
        self._sizes[ref] += size_bytes
        self._loads[node] += size_bytes
        self._total += size_bytes
        return node

    def remove(self, ref: ChunkRef) -> Tuple[NodeId, float]:
        """Drop a chunk; returns ``(node it held, its bytes)``."""
        node = self._assignment.pop(ref)
        size = self._sizes.pop(ref)
        self._loads[node] -= size
        self._total -= size
        return node, size

    def relocate(
        self, ref: ChunkRef, dest: NodeId
    ) -> Tuple[NodeId, float]:
        """Reassign a chunk to ``dest``; returns ``(source, bytes)``."""
        source = self._assignment[ref]
        size = self._sizes[ref]
        self._assignment[ref] = dest
        self._loads[source] -= size
        self._loads[dest] += size
        return source, size

    def update_size(self, ref: ChunkRef, delta_bytes: float) -> NodeId:
        """Grow/shrink a chunk's recorded bytes; returns its node."""
        node = self._assignment[ref]
        self._sizes[ref] += delta_bytes
        self._loads[node] += delta_bytes
        self._total += delta_bytes
        return node

    # -- compaction (no-ops: dicts do not fragment) --------------------
    @property
    def column_capacity(self) -> int:
        """Allocated per-chunk slots (== live chunks for a dict)."""
        return len(self._assignment)

    @property
    def dead_slot_fraction(self) -> float:
        """Fraction of allocated slots holding no live chunk (always 0)."""
        return 0.0

    def compact(self, min_dead_fraction: float = 0.0) -> bool:
        """Dict storage never fragments; compaction is a no-op.

        Returns
        -------
        bool
            Always ``False`` (nothing to reclaim).
        """
        return False

    def commit_batch(
        self,
        first_sizes: Dict[ChunkRef, float],
        commit_nodes: Sequence[NodeId],
        merges: Sequence[Tuple[ChunkRef, float]],
    ) -> Dict[ChunkRef, NodeId]:
        """Apply a partitioned batch with C-level dict updates."""
        assignment = self._assignment
        sizes = self._sizes
        loads = self._loads
        placements: Dict[ChunkRef, NodeId] = {}
        total_delta = 0.0
        if first_sizes:
            # Build placements first: the dict-to-dict updates below
            # then reuse its stored hashes (no Python-level re-hashing).
            placements = dict(zip(first_sizes, commit_nodes))
            assignment.update(placements)
            sizes.update(first_sizes)
            for node, size in zip(commit_nodes, first_sizes.values()):
                loads[node] += size
                total_delta += size
        for ref, size_bytes in merges:
            size = float(size_bytes)
            node = assignment[ref]
            sizes[ref] += size
            loads[node] += size
            total_delta += size
            placements[ref] = node
        self._total += total_delta
        return placements


class _RefsMappingView(Mapping):
    """Read-only mapping over the array ledger's alive refs."""

    __slots__ = ("_ledger",)

    def __init__(self, ledger: "ArrayChunkLedger") -> None:
        self._ledger = ledger

    def __iter__(self):
        return iter(self._ledger._id_of)

    def __len__(self) -> int:
        return len(self._ledger._id_of)

    def __contains__(self, ref) -> bool:
        return ref in self._ledger._id_of


class _AssignmentView(_RefsMappingView):
    """``ChunkRef -> NodeId`` view backed by the node column."""

    def __getitem__(self, ref: ChunkRef) -> NodeId:
        led = self._ledger
        return led._node_list[led._node[led._id_of[ref]]]

    def get(self, ref, default=None):
        led = self._ledger
        i = led._id_of.get(ref)
        if i is None:
            return default
        return led._node_list[led._node[i]]


class _SizesView(_RefsMappingView):
    """``ChunkRef -> bytes`` view backed by the size column."""

    def __getitem__(self, ref: ChunkRef) -> float:
        led = self._ledger
        return float(led._size[led._id_of[ref]])

    def get(self, ref, default=None):
        i = self._ledger._id_of.get(ref)
        if i is None:
            return default
        return float(self._ledger._size[i])


class _LoadsView(Mapping):
    """``NodeId -> bytes`` view backed by the load column."""

    __slots__ = ("_ledger",)

    def __init__(self, ledger: "ArrayChunkLedger") -> None:
        self._ledger = ledger

    def __getitem__(self, node: NodeId) -> float:
        led = self._ledger
        return float(led._load[led._slot_of[node]])

    def get(self, node, default=None):
        slot = self._ledger._slot_of.get(node)
        if slot is None:
            return default
        return float(self._ledger._load[slot])

    def __iter__(self):
        return iter(self._ledger._slot_of)

    def __len__(self) -> int:
        return len(self._ledger._slot_of)

    def __contains__(self, node) -> bool:
        return node in self._ledger._slot_of


class ArrayChunkLedger:
    """Interned-ref ledger over parallel numpy columns.

    Every first-time ref is interned to a dense integer id; the id
    indexes the ``_size`` (float64 bytes), ``_node`` (int64 owner id)
    and — when every ref shares one key arity — ``_key`` (int64 chunk
    coordinates) columns.  Removed ids go on a free list and are reused
    by later placements, so the columns stay dense under churn.

    Node ids are likewise interned to dense slots (the ``_load``
    column); the ``_node`` column stores the *slot*, not the raw node
    id, so the -1 free-slot sentinel can never collide with a caller's
    node id (node ids may be any ints, including negatives).  Batch
    commits turn the per-node load accumulation into ``np.add.at``
    over slot indices, and rebalance heuristics read whole byte
    columns (:meth:`sizes_of`, :meth:`key_column`) instead of one dict
    probe per chunk.
    """

    mode = "array"

    _INITIAL_CAPACITY = 64

    def __init__(self, nodes: Sequence[NodeId]) -> None:
        cap = self._INITIAL_CAPACITY
        self._id_of: Dict[ChunkRef, int] = {}
        self._refs = np.empty(cap, dtype=object)
        self._size = np.zeros(cap, dtype=np.float64)
        self._node = np.full(cap, -1, dtype=np.int64)
        self._key: Optional[np.ndarray] = None  # (cap, ndim) int64
        self._key_width: Optional[int] = None
        self._keys_ok = True
        self._free: List[int] = []
        self._hwm = 0  # high-water mark of allocated ids
        self._total = 0.0
        # node interning
        self._slot_of: Dict[NodeId, int] = {}
        self._node_list: List[NodeId] = []  # slot -> node id
        self._load = np.zeros(0, dtype=np.float64)
        for n in nodes:
            self.add_node(int(n))
        # cached views (stateless over self)
        self._assignment_view = _AssignmentView(self)
        self._sizes_view = _SizesView(self)
        self._loads_view = _LoadsView(self)

    # -- capacity ------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = len(self._size)
        if need <= cap:
            return
        new_cap = max(need, cap * 2)
        self._refs = np.concatenate(
            [self._refs, np.empty(new_cap - cap, dtype=object)]
        )
        self._size = np.concatenate(
            [self._size, np.zeros(new_cap - cap, dtype=np.float64)]
        )
        self._node = np.concatenate(
            [self._node, np.full(new_cap - cap, -1, dtype=np.int64)]
        )
        if self._key is not None:
            self._key = np.concatenate(
                [
                    self._key,
                    np.zeros(
                        (new_cap - cap, self._key.shape[1]),
                        dtype=np.int64,
                    ),
                ]
            )

    def _alloc(self, count: int) -> np.ndarray:
        """Allocate ``count`` ids: free-list first, then fresh slots."""
        reuse = min(count, len(self._free))
        ids = np.empty(count, dtype=np.int64)
        if reuse:
            ids[:reuse] = self._free[len(self._free) - reuse:]
            del self._free[len(self._free) - reuse:]
        fresh = count - reuse
        if fresh:
            self._grow(self._hwm + fresh)
            ids[reuse:] = np.arange(
                self._hwm, self._hwm + fresh, dtype=np.int64
            )
            self._hwm += fresh
        return ids

    def _store_keys(self, ids: np.ndarray, refs: Sequence[ChunkRef]) -> None:
        """Fill the key-coordinate column for freshly interned refs."""
        if not self._keys_ok:
            return
        try:
            keys = np.array([r.key for r in refs], dtype=np.int64)
        except (ValueError, OverflowError):
            # Mixed arities or beyond-int64 coordinates: the coordinate
            # column cannot represent this workload; disable it (bulk
            # key reads then fall back to per-ref tuples).
            self._keys_ok = False
            self._key = None
            return
        width = keys.shape[1] if keys.ndim == 2 else 1
        if self._key_width is None:
            self._key_width = width
            self._key = np.zeros(
                (len(self._size), width), dtype=np.int64
            )
        elif width != self._key_width:
            self._keys_ok = False
            self._key = None
            return
        self._key[ids] = keys.reshape(len(refs), width)

    # -- nodes ---------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Intern a node id to the next load slot with zero load."""
        slot = len(self._slot_of)
        self._slot_of[int(node)] = slot
        self._node_list.append(int(node))
        self._load = np.concatenate([self._load, np.zeros(1)])

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is registered."""
        return node in self._slot_of

    def load_of(self, node: NodeId) -> float:
        """Bytes currently assigned to ``node``."""
        return float(self._load[self._slot_of[node]])

    def node_loads(self) -> Dict[NodeId, float]:
        """A copy of the ``node -> bytes`` load map."""
        load = self._load
        return {
            n: float(load[slot]) for n, slot in self._slot_of.items()
        }

    def _slots_of(self, nodes: np.ndarray) -> np.ndarray:
        """Map an array of node ids to load slots (KeyError on unknown)."""
        slot_of = self._slot_of
        return np.fromiter(
            (slot_of[int(n)] for n in nodes),
            dtype=np.int64,
            count=len(nodes),
        )

    # -- reads ---------------------------------------------------------
    def contains(self, ref: ChunkRef) -> bool:
        """Whether ``ref`` is currently interned (placed)."""
        return ref in self._id_of

    def get_node(self, ref: ChunkRef) -> Optional[NodeId]:
        """Node holding ``ref``, or ``None`` when never placed."""
        i = self._id_of.get(ref)
        return None if i is None else self._node_list[self._node[i]]

    def node_of(self, ref: ChunkRef) -> NodeId:
        """Node holding ``ref`` (KeyError when never placed)."""
        return self._node_list[self._node[self._id_of[ref]]]

    def size_of(self, ref: ChunkRef) -> float:
        """Recorded bytes of ``ref`` (KeyError when never placed)."""
        return float(self._size[self._id_of[ref]])

    @property
    def chunk_count(self) -> int:
        """Number of live chunks."""
        return len(self._id_of)

    @property
    def total_bytes(self) -> float:
        """All live chunk bytes (O(1) running counter)."""
        return self._total

    def assignment(self) -> Dict[ChunkRef, NodeId]:
        """A copy of the full chunk → node map."""
        node = self._node
        node_list = self._node_list
        return {r: node_list[node[i]] for r, i in self._id_of.items()}

    def ids_on(self, node: NodeId) -> np.ndarray:
        """Dense ids of the chunks assigned to one node (vector scan)."""
        slot = self._slot_of[node]
        return np.nonzero(self._node[: self._hwm] == slot)[0]

    def refs_on(self, node: NodeId) -> List[ChunkRef]:
        """Refs assigned to one node (column-scan order)."""
        return self._refs[self.ids_on(node)].tolist()

    def sizes_of(self, refs: Sequence[ChunkRef]) -> np.ndarray:
        """Bulk byte sizes of many refs (one column gather)."""
        id_of = self._id_of
        ids = np.fromiter(
            (id_of[r] for r in refs), dtype=np.int64, count=len(refs)
        )
        return self._size[ids]

    def key_column(
        self, refs: Sequence[ChunkRef], dim: int
    ) -> np.ndarray:
        """Bulk chunk-key coordinates of many refs along one dimension."""
        if self._keys_ok and self._key is not None:
            id_of = self._id_of
            ids = np.fromiter(
                (id_of[r] for r in refs),
                dtype=np.int64,
                count=len(refs),
            )
            return self._key[ids, dim]
        return np.fromiter(
            (r.key[dim] for r in refs), dtype=np.int64, count=len(refs)
        )

    # -- views ---------------------------------------------------------
    def assignment_view(self) -> Mapping:
        return self._assignment_view

    def sizes_view(self) -> Mapping:
        return self._sizes_view

    def loads_view(self) -> Mapping:
        return self._loads_view

    # -- mutation ------------------------------------------------------
    def commit_new(
        self, ref: ChunkRef, size_bytes: float, node: NodeId
    ) -> None:
        """Intern ``ref`` to a fresh (or recycled) id on ``node``."""
        i = int(self._alloc(1)[0])
        slot = self._slot_of[node]
        self._id_of[ref] = i
        self._refs[i] = ref
        self._size[i] = size_bytes
        self._node[i] = slot
        self._store_keys(np.array([i], dtype=np.int64), [ref])
        self._load[slot] += size_bytes
        self._total += size_bytes

    def merge(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        """Add bytes to an already-placed chunk; returns its node."""
        i = self._id_of[ref]
        slot = int(self._node[i])
        self._size[i] += size_bytes
        self._load[slot] += size_bytes
        self._total += size_bytes
        return self._node_list[slot]

    def remove(self, ref: ChunkRef) -> Tuple[NodeId, float]:
        """Drop a chunk; its id joins the free list for reuse."""
        i = self._id_of.pop(ref)
        slot = int(self._node[i])
        size = float(self._size[i])
        self._node[i] = -1
        self._size[i] = 0.0
        self._refs[i] = None
        self._free.append(i)
        self._load[slot] -= size
        self._total -= size
        return self._node_list[slot], size

    def relocate(
        self, ref: ChunkRef, dest: NodeId
    ) -> Tuple[NodeId, float]:
        """Reassign a chunk to ``dest``; returns ``(source, bytes)``."""
        i = self._id_of[ref]
        source_slot = int(self._node[i])
        dest_slot = self._slot_of[dest]
        size = float(self._size[i])
        self._node[i] = dest_slot
        self._load[source_slot] -= size
        self._load[dest_slot] += size
        return self._node_list[source_slot], size

    def update_size(self, ref: ChunkRef, delta_bytes: float) -> NodeId:
        """Grow/shrink a chunk's recorded bytes; returns its node."""
        i = self._id_of[ref]
        slot = int(self._node[i])
        self._size[i] += delta_bytes
        self._load[slot] += delta_bytes
        self._total += delta_bytes
        return self._node_list[slot]

    def commit_batch(
        self,
        first_sizes: Dict[ChunkRef, float],
        commit_nodes: Sequence[NodeId],
        merges: Sequence[Tuple[ChunkRef, float]],
    ) -> Dict[ChunkRef, NodeId]:
        """Apply a partitioned batch with vectorized column writes.

        First-time placements land as whole-column fancy-index writes
        plus one ``np.add.at`` into the load column; merges gather
        their ids once and accumulate sizes/loads with unbuffered adds
        (duplicate refs within ``merges`` accumulate in batch order, so
        per-chunk sizes stay bit-identical to sequential placement).
        """
        placements: Dict[ChunkRef, NodeId] = {}
        total_delta = 0.0
        if first_sizes:
            refs = list(first_sizes)
            n_new = len(refs)
            sizes = np.fromiter(
                first_sizes.values(), dtype=np.float64, count=n_new
            )
            nodes = np.asarray(commit_nodes, dtype=np.int64)
            slots = self._slots_of(nodes)  # validates node ids
            ids = self._alloc(n_new)
            self._refs[ids] = refs
            self._size[ids] = sizes
            self._node[ids] = slots
            self._store_keys(ids, refs)
            self._id_of.update(zip(refs, ids.tolist()))
            np.add.at(self._load, slots, sizes)
            total_delta += float(sizes.sum())
            placements = dict(zip(refs, nodes.tolist()))
        if merges:
            id_of = self._id_of
            mids = np.fromiter(
                (id_of[r] for r, _ in merges),
                dtype=np.int64,
                count=len(merges),
            )
            msizes = np.fromiter(
                (s for _, s in merges),
                dtype=np.float64,
                count=len(merges),
            )
            np.add.at(self._size, mids, msizes)
            mslots = self._node[mids]
            np.add.at(self._load, mslots, msizes)
            total_delta += float(msizes.sum())
            node_list = self._node_list
            for (ref, _), slot in zip(merges, mslots.tolist()):
                placements[ref] = node_list[slot]
        self._total += total_delta
        return placements

    # -- compaction ----------------------------------------------------
    @property
    def column_capacity(self) -> int:
        """Allocated per-chunk column slots (live + dead + headroom).

        This is what the ledger's memory actually costs: every parallel
        column (`refs`, bytes, owner slot, key coordinates) holds this
        many entries regardless of how many are alive.
        """
        return len(self._size)

    @property
    def dead_slot_fraction(self) -> float:
        """Fraction of :attr:`column_capacity` not holding a live chunk.

        Dead slots are removed chunks parked on the free list plus the
        grown-but-never-used tail.  Churn-heavy workloads (insert +
        expire cycles) push this up; :meth:`compact` brings it back
        down.
        """
        cap = len(self._size)
        return 1.0 - len(self._id_of) / cap if cap else 0.0

    def compact(self, min_dead_fraction: float = 0.0) -> bool:
        """Re-intern live refs into dense ids and shrink the columns.

        Drops every free-list slot and the unused capacity tail: live
        entries are gathered (in id order, so relative recency is
        preserved) into fresh columns sized ``max(live, initial
        capacity)``, and the ref → id interning is rebuilt to match.
        Observable state — assignment, sizes, key coordinates, per-node
        loads, the running total — is unchanged (property-checked by
        ``tests/test_ledger_compaction.py``).

        Parameters
        ----------
        min_dead_fraction : float
            Only compact when :attr:`dead_slot_fraction` is at least
            this ratio (the coordinator passes its configured
            threshold; 0.0 compacts whenever anything is reclaimable).

        Returns
        -------
        bool
            ``True`` when the columns were rebuilt, ``False`` when the
            threshold was not met or nothing could shrink.
        """
        cap = len(self._size)
        live = len(self._id_of)
        if cap == 0 or self.dead_slot_fraction < min_dead_fraction:
            return False
        new_cap = max(self._INITIAL_CAPACITY, live)
        if not self._free and cap <= new_cap:
            return False  # already dense: nothing to reclaim
        ids = np.fromiter(
            self._id_of.values(), dtype=np.int64, count=live
        )
        ids.sort()
        refs = self._refs[ids]
        new_refs = np.empty(new_cap, dtype=object)
        new_refs[:live] = refs
        new_size = np.zeros(new_cap, dtype=np.float64)
        new_size[:live] = self._size[ids]
        new_node = np.full(new_cap, -1, dtype=np.int64)
        new_node[:live] = self._node[ids]
        if self._key is not None:
            new_key = np.zeros(
                (new_cap, self._key.shape[1]), dtype=np.int64
            )
            new_key[:live] = self._key[ids]
            self._key = new_key
        self._refs = new_refs
        self._size = new_size
        self._node = new_node
        self._id_of = dict(zip(refs.tolist(), range(live)))
        self._free = []
        self._hwm = live
        return True
