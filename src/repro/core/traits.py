"""The four features of elastic array partitioners (paper Table 1).

* **Incremental scale out** — when the cluster expands, data moves *only*
  from preexisting nodes to new ones; no global rebalance.
* **Fine-grained partitioning** — chunks are assigned one at a time rather
  than by subdividing planes of array space; best load balancing.
* **Skew-awareness** — the present physical data distribution (bytes, not
  logical chunk counts) guides each repartitioning.
* **n-dimensional clustering** — the scheme subdivides the array's logical
  space, keeping contiguous chunks on the same host for spatial querying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class PartitionerTraits:
    """Feature vector of one partitioning scheme (one row of Table 1)."""

    incremental_scale_out: bool
    fine_grained: bool
    skew_aware: bool
    nd_clustering: bool

    def as_row(self) -> Tuple[bool, bool, bool, bool]:
        return (
            self.incremental_scale_out,
            self.fine_grained,
            self.skew_aware,
            self.nd_clustering,
        )


#: Table 1 of the paper, exactly as published.  ``Round Robin`` is the §6.1
#: baseline and does not appear in the paper's table; we pin its traits from
#: the §6.1 prose ("not designed for incremental elasticity ... not
#: skew-aware"; §6.2.1 counts it among the three fine-grained schemes).
PAPER_TAXONOMY: Dict[str, PartitionerTraits] = {
    "append": PartitionerTraits(
        incremental_scale_out=True,
        fine_grained=True,
        skew_aware=False,
        nd_clustering=False,
    ),
    "consistent_hash": PartitionerTraits(
        incremental_scale_out=True,
        fine_grained=True,
        skew_aware=False,
        nd_clustering=False,
    ),
    "extendible_hash": PartitionerTraits(
        incremental_scale_out=True,
        fine_grained=True,
        skew_aware=True,
        nd_clustering=False,
    ),
    "hilbert_curve": PartitionerTraits(
        incremental_scale_out=True,
        fine_grained=False,
        skew_aware=True,
        nd_clustering=True,
    ),
    "incremental_quadtree": PartitionerTraits(
        incremental_scale_out=True,
        fine_grained=False,
        skew_aware=True,
        nd_clustering=True,
    ),
    "kd_tree": PartitionerTraits(
        incremental_scale_out=True,
        fine_grained=False,
        skew_aware=True,
        nd_clustering=True,
    ),
    "uniform_range": PartitionerTraits(
        incremental_scale_out=False,
        fine_grained=False,
        skew_aware=False,
        nd_clustering=True,
    ),
    "round_robin": PartitionerTraits(
        incremental_scale_out=False,
        fine_grained=True,
        skew_aware=False,
        nd_clustering=False,
    ),
}

#: Display names used in figures and tables, in the paper's ordering.
DISPLAY_NAMES: Dict[str, str] = {
    "append": "Append",
    "consistent_hash": "Cons. Hash",
    "extendible_hash": "Extend. Hash",
    "hilbert_curve": "Hilbert Curve",
    "incremental_quadtree": "Incr. Quadtree",
    "kd_tree": "K-d Tree",
    "round_robin": "Round Robin",
    "uniform_range": "Uniform Range",
}

#: Paper ordering of the schemes across Figures 4 and 5.
PAPER_ORDER: List[str] = [
    "append",
    "consistent_hash",
    "extendible_hash",
    "hilbert_curve",
    "incremental_quadtree",
    "kd_tree",
    "round_robin",
    "uniform_range",
]

TRAIT_COLUMNS: Tuple[str, ...] = (
    "Incremental Scale Out",
    "Fine-Grained Partitioning",
    "Skew-Aware",
    "n-Dimensional Clustering",
)
