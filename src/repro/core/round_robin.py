"""Round Robin baseline partitioner (paper §6.1).

Chunks are assigned to nodes in circular order of arrival: chunk ``i`` of
``k`` nodes lives on node ``i mod k``.  Every host serves an equal number of
chunks, but the scheme is **not** designed for incremental elasticity: when
the cluster scales out, ``k`` changes and most chunks shift location — a
global reshuffle.  It is also not skew-aware (it reasons about chunk counts,
never bytes).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.arrays.chunk import ChunkRef
from repro.core.base import ElasticPartitioner, Move, NodeId
from repro.core.traits import PAPER_TAXONOMY, PartitionerTraits


class RoundRobinPartitioner(ElasticPartitioner):
    """The ``i mod k`` baseline with global reshuffles on scale-out."""

    name = "round_robin"
    traits: PartitionerTraits = PAPER_TAXONOMY["round_robin"]

    def __init__(self, nodes: Sequence[NodeId]) -> None:
        super().__init__(nodes)
        self._counter = 0
        self._ordinal: Dict[ChunkRef, int] = {}

    def _place_new(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        ordinal = self._counter
        self._counter += 1
        self._ordinal[ref] = ordinal
        return self._nodes[ordinal % len(self._nodes)]

    def place_batch(self, refs_and_sizes):
        """Amortized batch placement: arrival ordinals of the batch's
        new refs are assigned arithmetically in one bulk update
        (duplicates merge, consuming no ordinal).  Equivalent to
        sequential :meth:`place` calls per the base class's batch
        contract."""
        first_sizes, merges = self._partition_batch(list(refs_and_sizes))
        nodes = self._nodes
        k = len(nodes)
        counter = self._counter
        n_new = len(first_sizes)
        commit_nodes = [
            nodes[(counter + i) % k] for i in range(n_new)
        ]
        self._ordinal.update(
            zip(first_sizes, range(counter, counter + n_new))
        )
        self._counter = counter + n_new
        return self._commit_batch(first_sizes, commit_nodes, merges)

    def _forget(self, ref, size_bytes, node) -> None:
        self._ordinal.pop(ref, None)

    def _adopt_batch(self, entries) -> None:
        # Arrival order is not persisted; re-assign ordinals in the
        # (deterministic) adoption order so post-recovery scale-outs
        # reshuffle every adopted chunk consistently.
        for ref, _size, _node in entries:
            self._ordinal[ref] = self._counter
            self._counter += 1

    def _extend(self, new_nodes: Sequence[NodeId]) -> List[Move]:
        # Recompute i mod k for every chunk under the new node count; any
        # chunk whose slot changes moves — typically (k-1)/k of the data.
        k = len(self._nodes)
        moves: List[Move] = []
        for ref, ordinal in sorted(
            self._ordinal.items(), key=lambda item: item[1]
        ):
            dest = self._nodes[ordinal % k]
            if dest != self._assignment[ref]:
                moves.append(self._relocate(ref, dest))
        return moves
