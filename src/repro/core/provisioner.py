"""The leading staircase provisioner (paper §5.1).

An elastic array database expands in discrete steps, like a staircase
climbing under the demand curve (Figure 3).  When an incoming insert would
exceed capacity, a Proportional-Derivative (PD) control loop sizes the next
step:

* the **proportional** term ``p_i = l_i - N*c`` is the present provisioning
  error — demand beyond capacity (Eq. 2);
* the **derivative** term ``Δ = (l_i - l_{i-s}) / s`` is the demand growth
  rate over the last ``s`` workload cycles (Eq. 3);
* the step height is ``k = ceil((p_i + p*Δ) / c)`` — enough nodes to absorb
  the overflow plus ``p`` future cycles of forecast growth (Eq. 4).

The loop never removes nodes: scientific databases grow monotonically
(no-overwrite storage), so demand never recedes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ProvisioningError


@dataclass(frozen=True)
class ProvisioningDecision:
    """Outcome of one control-loop evaluation.

    Attributes:
        new_nodes: how many nodes to add (0 = no scale-out).
        proportional: the ``p_i`` term in GB (demand beyond capacity).
        derivative: the ``Δ`` term in GB per cycle.
        projected_demand: demand the new capacity is sized for,
            ``l_i + p * Δ``.
    """

    new_nodes: int
    proportional: float
    derivative: float
    projected_demand: float


class LeadingStaircase:
    """PD control loop for scale-out decisions.

    Args:
        node_capacity: capacity ``c`` of one node (any byte unit, as long
            as demands use the same unit).
        samples: ``s``, cycles of history for the derivative term.
        planning_cycles: ``p``, future cycles each step provisions for.

    Use :meth:`observe` once per workload cycle with the post-insert
    storage demand, then :meth:`evaluate` to get the scale-out decision.
    """

    def __init__(
        self,
        node_capacity: float,
        samples: int = 1,
        planning_cycles: int = 1,
    ) -> None:
        if node_capacity <= 0:
            raise ProvisioningError(
                f"node capacity must be positive, got {node_capacity}"
            )
        if samples < 1:
            raise ProvisioningError(f"samples must be >= 1, got {samples}")
        if planning_cycles < 0:
            raise ProvisioningError(
                f"planning_cycles must be >= 0, got {planning_cycles}"
            )
        self.node_capacity = float(node_capacity)
        self.samples = int(samples)
        self.planning_cycles = int(planning_cycles)
        self._history: List[float] = []

    # ------------------------------------------------------------------
    @property
    def history(self) -> List[float]:
        """Observed post-insert storage demands, one per workload cycle."""
        return list(self._history)

    def observe(self, demand: float) -> None:
        """Record the storage demand after one cycle's insert."""
        if demand < 0:
            raise ProvisioningError(f"negative demand {demand}")
        if self._history and demand < self._history[-1]:
            # No-overwrite storage: demand is monotone.  Tolerate tiny
            # numerical jitter but reject real regressions.
            if demand < self._history[-1] * (1 - 1e-9):
                raise ProvisioningError(
                    "demand regressed from "
                    f"{self._history[-1]} to {demand}; the workload model "
                    "is monotonic (no-overwrite storage)"
                )
        self._history.append(float(demand))

    def derivative(self) -> float:
        """``Δ = (l_i - l_{i-s}) / s`` over the recorded history (Eq. 3).

        With fewer than ``s + 1`` observations the window shrinks to the
        available history; with a single observation the derivative is 0.
        """
        if len(self._history) < 2:
            return 0.0
        s = min(self.samples, len(self._history) - 1)
        return (self._history[-1] - self._history[-1 - s]) / s

    def evaluate(
        self,
        current_nodes: int,
        demand: Optional[float] = None,
    ) -> ProvisioningDecision:
        """Run the control loop for the current cycle (Eqs. 2–4).

        Args:
            current_nodes: nodes presently provisioned, ``N``.
            demand: present storage load ``l_i``; defaults to the last
                observed demand.

        Returns:
            The scale-out decision.  ``new_nodes`` is 0 whenever the
            proportional term is non-positive (the system is not over
            capacity), per §5.1.
        """
        if current_nodes < 1:
            raise ProvisioningError(
                f"cluster must have >= 1 node, got {current_nodes}"
            )
        if demand is None:
            if not self._history:
                raise ProvisioningError(
                    "no demand observed and none supplied"
                )
            demand = self._history[-1]

        proportional = demand - current_nodes * self.node_capacity
        delta = self.derivative()

        if proportional <= 0:
            return ProvisioningDecision(
                new_nodes=0,
                proportional=proportional,
                derivative=delta,
                projected_demand=demand + self.planning_cycles * delta,
            )

        k = math.ceil(
            (proportional + self.planning_cycles * delta)
            / self.node_capacity
        )
        k = max(k, 1)  # over capacity: at least one node must be added
        return ProvisioningDecision(
            new_nodes=k,
            proportional=proportional,
            derivative=delta,
            projected_demand=demand + self.planning_cycles * delta,
        )
