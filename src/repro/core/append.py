"""Append partitioner (paper §4.2).

Range partitioning by insert order: each new chunk goes to the first node
that is not at capacity, spilling to the next when the current target
fills.  Adding a node is a constant-time operation — it simply joins the
back of the fill order, so scale-out moves **zero** data.

The price is poor use of new hardware (recently added nodes sit idle until
the fill pointer reaches them) and no multidimensional clustering beyond
insert order, which is why the paper observes erratic query latencies when
recent data is queried most (Figure 6).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.arrays.chunk import ChunkRef
from repro.core.base import ElasticPartitioner, Move, NodeId
from repro.core.traits import PAPER_TAXONOMY, PartitionerTraits
from repro.errors import PartitioningError


class AppendPartitioner(ElasticPartitioner):
    """Fill nodes in order, spilling when each reaches capacity.

    Args:
        nodes: initial node ids; they are filled in this order.
        node_capacity_bytes: capacity after which the fill pointer advances.
            The partitioner never *rejects* data — if every node is full the
            last node keeps absorbing chunks (the provisioner's job is to
            add hardware before that happens).
    """

    name = "append"
    traits: PartitionerTraits = PAPER_TAXONOMY["append"]

    def __init__(
        self,
        nodes: Sequence[NodeId],
        node_capacity_bytes: float,
    ) -> None:
        super().__init__(nodes)
        if node_capacity_bytes <= 0:
            raise PartitioningError(
                f"node capacity must be positive, got {node_capacity_bytes}"
            )
        self.node_capacity_bytes = float(node_capacity_bytes)
        self._cursor = 0

    @property
    def cursor_node(self) -> NodeId:
        """The node currently receiving new chunks."""
        return self._nodes[self._cursor]

    def _place_new(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        # Advance past full nodes; stop at the last node regardless.
        while (
            self._cursor < len(self._nodes) - 1
            and self._loads[self._nodes[self._cursor]] + size_bytes
            > self.node_capacity_bytes
        ):
            self._cursor += 1
        return self._nodes[self._cursor]

    def _extend(self, new_nodes: Sequence[NodeId]) -> List[Move]:
        # New nodes joined the back of the fill order (the base class
        # appended them to self._nodes); no data moves — this is the
        # constant-time scale-out the paper highlights.
        return []
