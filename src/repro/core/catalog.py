"""The cluster-wide columnar chunk catalog.

:class:`ChunkCatalog` is the single authoritative, incrementally
maintained index of every chunk physically stored in the cluster:
``(array, chunk key, owner node, bytes, payload handle)``, held as
interned dense ids over parallel numpy columns in the style of the
placement ledger (:mod:`repro.core.ledger`).  The coordinator updates it
in place on every mutation — inserts, rebalances, removals, scale-outs —
so the query read path (:meth:`pairs_of_array`,
:meth:`placement_of_array`, :meth:`scan_columns_of`) is an
O(live-chunks-of-array) column gather with **no per-node store walk and
no per-query re-sort**.

Per-array sorted views
----------------------
For each array the catalog keeps its live chunk ids sorted by chunk key
(the order ``ElasticCluster.chunks_of_array`` has always returned).
The views are maintained incrementally: a batch of inserts merges its
(pre-sorted) new ids into the existing view with one ``searchsorted`` +
``insert``; removals mask ids out; relocations touch only the owner
column and leave the order alone.  Nothing is rebuilt per query.

Epochs and the payload cache
----------------------------
Every mutation that touches an array bumps that array's **epoch** (and
the global one); mutations that change cell contents — inserts, merges,
removals — additionally bump its **payload epoch**.
:meth:`payload_of_array` concatenates the array's cell coordinates and
value columns in catalog order and caches the result keyed by
``(array, normalized attrs, payload epoch)`` — repeated queries (in any
attr order) skip re-concatenation entirely, a content mutation
invalidates the cache by construction (the entry is dropped eagerly,
and a stale one could never be served because its recorded epoch no
longer matches), pure relocations keep it valid (ownership is not part
of a payload, so even rebalances don't force a re-concatenation), and a
small LRU bound (:attr:`ChunkCatalog.PAYLOAD_CACHE_MAX`) ages out attr
subsets that stop being queried.  Compaction
(:meth:`compact`) re-interns ids but preserves every observable,
including live cache entries and epochs.

Content delta log
-----------------
Every content mutation additionally appends signed rows to a per-array
**delta log** (:class:`_DeltaLog`): inserts append ``+1`` rows, removals
append ``-1`` rows, and a merge that replaces a stored payload appends
the retiring handle at ``-1`` followed by the merged handle at ``+1``.
Pure relocations append nothing — ownership changes are not content.
:meth:`deltas_since` slices the log after an epoch cursor in one
``searchsorted``, returning the added/removed chunk columns the
incremental query-maintenance layer (:mod:`repro.query.incremental`)
folds into its operator state, so steady-state maintenance touches only
what changed.  The log stores refs and payload handles, not interned
ids, so :meth:`compact` leaves it untouched, and replaying it from
epoch 0 must land exactly on the live set — :meth:`verify_delta_log`
checks that, and ``ElasticCluster.check_consistency`` calls it.

Parity oracle
-------------
Mirroring ``REPRO_LEDGER`` / ``REPRO_COST``, the ``REPRO_CATALOG``
environment variable (and the :func:`catalog_mode` context manager)
selects between ``catalog`` routing and the pre-catalog ``scan`` oracle:
under ``scan`` the cluster re-walks every node's store per query and the
coordinator executes rebalances one evict/put at a time, exactly as
before.  The catalog is maintained in both modes, so
``tests/test_catalog.py`` can compare the two read paths on one cluster.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import config as parity_config
from repro import lockdep
from repro.arrays.chunk import ChunkData, ChunkKey, ChunkRef
from repro.arrays.coords import Box, pack_rows_void
from repro.errors import ClusterError

NodeId = int

#: Catalog modes accepted by ``REPRO_CATALOG`` / :func:`catalog_mode`.
CATALOG_MODES = parity_config.PARITY_FIELDS["catalog"][1]


def default_catalog_mode() -> str:
    """The process-wide catalog mode.

    Thin shim over :func:`repro.config.mode` — the ``REPRO_CATALOG``
    environment variable and ``parity(catalog=...)`` overrides both
    resolve there.
    """
    return parity_config.mode("catalog")


@contextmanager
def catalog_mode(mode: str) -> Iterator[None]:
    """Temporarily pin the catalog mode (parity tests).

    Legacy shim over :func:`repro.config.parity`; prefer
    ``parity(catalog=...)``.

    Raises
    ------
    ClusterError
        If ``mode`` is not a known catalog mode.
    """
    if mode not in CATALOG_MODES:
        raise ClusterError(
            f"unknown catalog mode {mode!r}; expected one of "
            f"{CATALOG_MODES}"
        )
    with parity_config.parity(catalog=mode):
        yield


def concat_payload(
    chunks: Sequence[ChunkData],
    attrs: Sequence[str],
    ndim: int = 0,
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Concatenate chunks' cells into one coordinate/value table.

    The catalog-internal twin of
    :func:`repro.query.operators.concat_chunk_payload` (kept separate so
    the cluster layer never imports the query package).  ``ndim`` shapes
    the empty coordinate table when ``chunks`` is empty.
    """
    if not chunks:
        return (
            np.empty((0, ndim), dtype=np.int64),
            {a: np.empty(0) for a in attrs},
        )
    coords = np.concatenate([c.coords for c in chunks], axis=0)
    values = {
        a: np.concatenate([c.values(a) for c in chunks]) for a in attrs
    }
    return coords, values


#: Chunk keys sort by their lexicographic void view (shared helper —
#: :func:`repro.query.operators.pack_coords` is the same packing).
_pack_keys = pack_rows_void


@dataclass(frozen=True)
class CatalogDelta:
    """One array's content mutations after an epoch cursor, as columns.

    A numpy-native ZSet over chunks: parallel columns in log (mutation)
    order, where ``signs`` carries the weight of each row — ``+1`` for a
    chunk that entered the live set, ``-1`` for one that left it.  A
    merge that replaced a stored payload contributes its retiring handle
    at ``-1`` immediately followed by the merged handle at ``+1``.
    Summing signs per ref therefore replays to the live set, and the
    incremental maintenance layer folds the same rows into its operator
    state (added cells at ``+1``, expired cells at ``-1``).
    """

    #: Catalog epoch at which each mutation landed (non-decreasing).
    epochs: np.ndarray
    #: ZSet weight of each row: ``+1`` added, ``-1`` removed.
    signs: np.ndarray
    #: The mutated chunks' refs (object column).
    refs: np.ndarray
    #: The payload handles as of the mutation (object column).
    chunks: np.ndarray
    #: Modeled bytes of each mutated chunk.
    sizes: np.ndarray
    #: Node holding the chunk at mutation time (added rows: the owner
    #: after the put; removed rows: the owner the chunk left).
    nodes: np.ndarray

    def __len__(self) -> int:
        return int(self.signs.shape[0])

    @property
    def added(self) -> np.ndarray:
        """Boolean mask of the ``+1`` rows."""
        return self.signs > 0

    @property
    def removed(self) -> np.ndarray:
        """Boolean mask of the ``-1`` rows."""
        return self.signs < 0

    @property
    def bytes_touched(self) -> float:
        """Total modeled bytes across added *and* removed rows.

        The incremental plan reads every delta row (removals re-enter
        the operators as negative contributions), so this — not the net
        byte change — is what the Tempura-style planner charges.
        """
        return float(self.sizes.sum())


class _DeltaLog:
    """Append-only columnar log of one array's content mutations.

    Amortized-doubling numpy columns in the style of the catalog's own
    chunk columns; ``epochs`` is non-decreasing by construction, so
    :meth:`since` finds a cursor with one ``searchsorted`` and the tail
    gather is O(delta).  Rows are keyed by ref and payload handle — not
    interned ids — so catalog compaction never rewrites the log.
    """

    __slots__ = ("epochs", "signs", "refs", "chunks", "sizes", "nodes",
                 "count")

    _INITIAL_CAPACITY = 64

    def __init__(self) -> None:
        cap = self._INITIAL_CAPACITY
        self.epochs = np.zeros(cap, dtype=np.int64)
        self.signs = np.zeros(cap, dtype=np.int8)
        self.refs = np.empty(cap, dtype=object)
        self.chunks = np.empty(cap, dtype=object)
        self.sizes = np.zeros(cap, dtype=np.float64)
        self.nodes = np.full(cap, -1, dtype=np.int64)
        self.count = 0

    def append(
        self,
        epoch: int,
        signs: Sequence[int],
        refs: Sequence[ChunkRef],
        chunks: Sequence[ChunkData],
        sizes: Sequence[float],
        nodes: Sequence[int],
    ) -> None:
        n = len(signs)
        need = self.count + n
        cap = len(self.signs)
        if need > cap:
            new_cap = max(need, cap * 2)
            extra = new_cap - cap
            self.epochs = np.concatenate(
                [self.epochs, np.zeros(extra, dtype=np.int64)]
            )
            self.signs = np.concatenate(
                [self.signs, np.zeros(extra, dtype=np.int8)]
            )
            self.refs = np.concatenate(
                [self.refs, np.empty(extra, dtype=object)]
            )
            self.chunks = np.concatenate(
                [self.chunks, np.empty(extra, dtype=object)]
            )
            self.sizes = np.concatenate(
                [self.sizes, np.zeros(extra, dtype=np.float64)]
            )
            self.nodes = np.concatenate(
                [self.nodes, np.full(extra, -1, dtype=np.int64)]
            )
        sl = slice(self.count, need)
        self.epochs[sl] = epoch
        self.signs[sl] = np.asarray(signs, dtype=np.int8)
        self.refs[sl] = refs
        self.chunks[sl] = chunks
        self.sizes[sl] = np.asarray(sizes, dtype=np.float64)
        self.nodes[sl] = np.asarray(nodes, dtype=np.int64)
        self.count = need

    def since(self, epoch: int) -> CatalogDelta:
        """Rows strictly after ``epoch``, as fresh column copies."""
        n = self.count
        lo = int(np.searchsorted(self.epochs[:n], epoch, side="right"))
        sl = slice(lo, n)
        return CatalogDelta(
            epochs=self.epochs[sl].copy(),
            signs=self.signs[sl].copy(),
            refs=self.refs[sl].copy(),
            chunks=self.chunks[sl].copy(),
            sizes=self.sizes[sl].copy(),
            nodes=self.nodes[sl].copy(),
        )


#: Shared empty log: ``deltas_since`` on unknown arrays slices this.
_EMPTY_LOG = _DeltaLog()


class _ArrayView:
    """One array's live chunk ids, kept sorted by chunk key.

    Alongside the packed void keys (scalar comparisons for the
    ``searchsorted`` merge), the view keeps the same keys as an
    ``(n, ndim)`` int64 matrix — region routing selects chunks with one
    vectorized per-dimension interval comparison over it
    (:meth:`ChunkCatalog.ids_in_region`), never touching ``Box``
    objects or per-chunk Python.

    ``epoch`` advances on *any* mutation touching the array;
    ``payload_epoch`` only on mutations that change cell contents
    (inserts, merges, removals) — pure relocations move ownership, not
    payloads, so the concatenation cache keys on the latter and
    survives rebalances.
    """

    __slots__ = ("ids", "keys", "rows", "epoch", "payload_epoch", "width")

    def __init__(self, width: int) -> None:
        self.width = width
        self.ids = np.empty(0, dtype=np.int64)
        self.keys = _pack_keys(np.empty((0, width), dtype=np.int64))
        self.rows = np.empty((0, width), dtype=np.int64)
        self.epoch = 0
        self.payload_epoch = 0

    def insert(self, new_ids: np.ndarray, new_keys: np.ndarray) -> None:
        """Merge pre-validated new ids into the sorted view."""
        packed = _pack_keys(new_keys)
        order = np.argsort(packed)
        packed = packed[order]
        positions = np.searchsorted(self.keys, packed)
        self.ids = np.insert(self.ids, positions, new_ids[order])
        self.keys = np.insert(self.keys, positions, packed)
        self.rows = np.insert(self.rows, positions, new_keys[order], axis=0)

    def drop(self, dead_ids: np.ndarray) -> None:
        """Remove ids from the view (order of survivors unchanged)."""
        keep = ~np.isin(self.ids, dead_ids)
        self.ids = self.ids[keep]
        self.keys = self.keys[keep]
        self.rows = self.rows[keep]


class ArraySnapshot:
    """An immutable, epoch-pinned view of one array's catalog state.

    MVCC-lite: :meth:`ChunkCatalog.snapshot` gathers fresh copies of the
    array's id/key/owner/bytes column slices (cheap — the per-array
    views are already copy-on-write-shaped) plus the length of its delta
    log at capture time.  Every read below answers from those frozen
    columns, so a query holding a snapshot never sees a half-applied
    rebalance, an expiry, or an ingest that lands after the pin —
    payload handles are immutable :class:`~repro.arrays.chunk.ChunkData`
    objects (merges create *new* objects), so even cell reads are safe
    while the coordinator mutates the live catalog.

    The API mirrors the catalog's per-array read surface
    (:meth:`pairs` / :meth:`placement` / :meth:`scan_columns` / the
    region family / :meth:`payload` / :meth:`deltas_since`) so the
    cluster session facade can route either way.  Payload
    concatenations are memoized per snapshot; when the live catalog is
    still at the pinned payload epoch the read delegates to the shared
    payload LRU instead, so quiescent callers keep its hit telemetry
    and share one concatenation across sessions.
    """

    __slots__ = (
        "array", "schema", "epoch", "payload_epoch",
        "_refs", "_chunks", "_sizes", "_nodes", "_rows",
        "_log_cols", "_log_count", "_catalog", "_memo", "_memo_lock",
    )

    def __init__(
        self,
        array: str,
        schema: Optional[object],
        epoch: int,
        payload_epoch: int,
        refs: np.ndarray,
        chunks: np.ndarray,
        sizes: np.ndarray,
        nodes: np.ndarray,
        rows: np.ndarray,
        log_cols: Optional[Tuple[np.ndarray, ...]],
        log_count: int,
        catalog: "ChunkCatalog",
    ) -> None:
        self.array = array
        self.schema = schema
        self.epoch = epoch
        self.payload_epoch = payload_epoch
        self._refs = refs
        self._chunks = chunks
        self._sizes = sizes
        self._nodes = nodes
        self._rows = rows
        self._log_cols = log_cols
        self._log_count = log_count
        self._catalog = catalog
        self._memo: Dict[Tuple, Tuple] = {}
        self._memo_lock = threading.Lock()

    def __len__(self) -> int:
        return int(self._sizes.shape[0])

    def node_ids(self) -> np.ndarray:
        """Distinct node ids holding pinned chunks (sorted int64).

        Sessions validate these against their frozen node universe so a
        pin capturing placements on a node added *after* the session
        opened is rejected as an epoch race instead of producing
        charges the session's cost accumulator cannot intern.
        """
        return np.unique(self._nodes)

    def node_bounds(self) -> Tuple[int, int]:
        """``(min, max)`` node id holding pinned chunks (memoized).

        The cheap arm of the session's node-universe admission check:
        against a contiguous node set a bounds test is equivalent to
        the full subset test, and memoizing it keeps repeated pins of
        one shared snapshot O(1).  Undefined on empty snapshots
        (callers guard on ``len``).
        """
        key = ("node_bounds",)
        with self._memo_lock:
            cached = self._memo.get(key)
        if cached is None:
            cached = (int(self._nodes.min()), int(self._nodes.max()))
            with self._memo_lock:
                self._memo[key] = cached
        return cached

    # -- whole-array reads ---------------------------------------------
    def pairs(self) -> List[Tuple[ChunkData, NodeId]]:
        """Pinned (payload, node) pairs, key-sorted."""
        return list(zip(self._chunks.tolist(), self._nodes.tolist()))

    def placement(self) -> Dict[ChunkKey, NodeId]:
        """Pinned chunk key → node map."""
        return {
            ref.key: node
            for ref, node in zip(
                self._refs.tolist(), self._nodes.tolist()
            )
        }

    def scan_columns(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[object]]:
        """Pinned ``(sizes, nodes, schema)`` columns (fresh copies)."""
        return self._sizes.copy(), self._nodes.copy(), self.schema

    # -- region reads --------------------------------------------------
    def _positions_in_region(self, region: Box) -> np.ndarray:
        """Snapshot positions whose chunk boxes intersect ``region``."""
        if self.schema is None or not len(self):
            return np.empty(0, dtype=np.int64)
        intervals = self.schema.chunk_intervals_of(region)
        if intervals is None:
            return np.empty(0, dtype=np.int64)
        lows, highs = intervals
        mask = ((self._rows >= lows) & (self._rows <= highs)).all(axis=1)
        return np.nonzero(mask)[0]

    def pairs_in_region(
        self, region: Box
    ) -> List[Tuple[ChunkData, NodeId]]:
        """Pinned region-touched (payload, node) pairs, key-sorted."""
        pos = self._positions_in_region(region)
        return list(
            zip(self._chunks[pos].tolist(), self._nodes[pos].tolist())
        )

    def region_scan_columns(
        self, region: Box
    ) -> Tuple[np.ndarray, np.ndarray, Optional[object]]:
        """Pinned ``(sizes, nodes, schema)`` columns of a region."""
        pos = self._positions_in_region(region)
        return self._sizes[pos], self._nodes[pos], self.schema

    def region_read(
        self, region: Box
    ) -> Tuple[
        List[Tuple[ChunkData, NodeId]],
        Tuple[np.ndarray, np.ndarray, Optional[object]],
    ]:
        """Pinned pairs *and* scan columns from one routing pass."""
        pos = self._positions_in_region(region)
        pairs = list(
            zip(self._chunks[pos].tolist(), self._nodes[pos].tolist())
        )
        return pairs, (self._sizes[pos], self._nodes[pos], self.schema)

    # -- payload reads -------------------------------------------------
    def _live_payload(
        self, compute, check_epoch
    ) -> Optional[Tuple[np.ndarray, Dict[str, np.ndarray]]]:
        """Serve through the live catalog cache if still at our epoch.

        The delegation is validated against the mutation seqlock, not
        just the payload epoch: mutators swap payload handles *before*
        bumping the epoch, so an epoch check alone would accept a
        concatenation that read a post-pin merged handle (or a torn
        cache entry installed mid-mutation) as the pinned bytes.  Any
        overlap with an in-flight mutation — seq odd at entry, or moved
        during the gather — discards the result and the caller falls
        back to the frozen handles.  Torn reads that raise from the
        live gather take the same fallback.
        """
        if check_epoch() != self.payload_epoch:
            return None
        cat = self._catalog
        seq = cat._write_seq
        if seq & 1:
            return None
        try:
            result = compute()
        except Exception:
            return None
        if cat._write_seq != seq:
            return None
        return result

    def payload(
        self, attrs: Sequence[str], ndim: int = 0
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Pinned concatenated cells, memoized per snapshot.

        Equivalent to :meth:`ChunkCatalog.payload_of_array` at the
        pinned epoch.  Callers must treat the arrays as read-only.
        """
        key = (tuple(sorted(set(attrs))), int(ndim))
        with self._memo_lock:
            hit = self._memo.get(key)
        if hit is not None:
            return hit
        cat = self._catalog
        result = self._live_payload(
            lambda: cat.payload_of_array(self.array, attrs, ndim),
            lambda: cat.payload_epoch_of(self.array),
        )
        if result is None:
            result = concat_payload(self._chunks.tolist(), attrs, ndim)
        with self._memo_lock:
            self._memo[key] = result
        return result

    def payload_in_region(
        self, region: Box, attrs: Sequence[str], ndim: int = 0
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Pinned region-clipped cells, memoized per snapshot.

        Equivalent to :meth:`ChunkCatalog.payload_in_region` at the
        pinned epoch.  Callers must treat the arrays as read-only.
        """
        key = (
            tuple(sorted(set(attrs))), int(ndim), region.lo, region.hi,
        )
        with self._memo_lock:
            hit = self._memo.get(key)
        if hit is not None:
            return hit
        cat = self._catalog
        result = self._live_payload(
            lambda: cat.payload_in_region(
                self.array, region, attrs, ndim
            ),
            lambda: cat.payload_epoch_of(self.array),
        )
        if result is None:
            pos = self._positions_in_region(region)
            coords, values = concat_payload(
                self._chunks[pos].tolist(), attrs, ndim
            )
            if coords.shape[0]:
                mask = np.ones(coords.shape[0], dtype=bool)
                for d in range(len(region.lo)):
                    mask &= coords[:, d] >= region.lo[d]
                    mask &= coords[:, d] < region.hi[d]
                coords = coords[mask]
                values = {a: v[mask] for a, v in values.items()}
            result = (coords, values)
        with self._memo_lock:
            self._memo[key] = result
        return result

    # -- delta reads ---------------------------------------------------
    def deltas_since(self, epoch: int) -> CatalogDelta:
        """Content mutations after ``epoch`` up to the pinned log end.

        The frozen twin of :meth:`ChunkCatalog.deltas_since`: rows
        appended after the snapshot was taken are invisible, so a
        maintained view refreshing against a snapshot folds exactly the
        mutations between its cursor and the pin — never a half-applied
        batch that lands mid-refresh.  (The delta log is append-only
        and rows below the pinned length are never rewritten, so the
        slice needs no copy-out at capture time.)
        """
        if self._log_cols is None or not self._log_count:
            return _EMPTY_LOG.since(0)
        epochs = self._log_cols[0][:self._log_count]
        lo = int(np.searchsorted(epochs, epoch, side="right"))
        sl = slice(lo, self._log_count)
        cols = self._log_cols
        return CatalogDelta(
            epochs=cols[0][sl].copy(),
            signs=cols[1][sl].copy(),
            refs=cols[2][sl].copy(),
            chunks=cols[3][sl].copy(),
            sizes=cols[4][sl].copy(),
            nodes=cols[5][sl].copy(),
        )

    def delta_scan_columns(
        self, epoch: int
    ) -> Tuple[np.ndarray, np.ndarray, Optional[object]]:
        """``(sizes, nodes, schema)`` of the pinned delta's rows."""
        delta = self.deltas_since(epoch)
        return delta.sizes, delta.nodes, self.schema


class ChunkCatalog:
    """Columnar cluster-wide chunk index (see module docstring).

    The per-chunk state lives in parallel columns indexed by a dense
    interned id: the owning :class:`~repro.arrays.chunk.ChunkRef`, the
    payload handle (the exact :class:`~repro.arrays.chunk.ChunkData`
    object the owning node's store holds), modeled bytes, and the owner
    node id.  Removed ids go on a free list for reuse; :meth:`compact`
    re-interns past a dead-slot threshold, like the placement ledger.
    """

    _INITIAL_CAPACITY = 64

    #: Upper bound on live payload-cache entries (LRU eviction beyond
    #: it).  Every distinct ``(array, attr subset)`` a workload queries
    #: costs one concatenated copy of that array's cells, so an
    #: unbounded cache would grow with the *query* population, not the
    #: data; a small LRU keeps the steady-state working set (a handful
    #: of attr subsets per array) while bounding one-off queries.
    PAYLOAD_CACHE_MAX = 32

    #: Optimistic snapshot captures before falling back to the write
    #: lock (the retry-on-epoch-race guard).
    SNAPSHOT_RETRIES = 5

    def __init__(self) -> None:
        cap = self._INITIAL_CAPACITY
        self._id_of: Dict[ChunkRef, int] = {}
        self._refs = np.empty(cap, dtype=object)
        self._chunks = np.empty(cap, dtype=object)
        self._size = np.zeros(cap, dtype=np.float64)
        self._node = np.full(cap, -1, dtype=np.int64)
        self._free: List[int] = []
        self._hwm = 0
        self._views: Dict[str, _ArrayView] = {}
        self._schema_of: Dict[str, object] = {}
        self._deltas: Dict[str, _DeltaLog] = {}
        self._epoch = 0
        # payload LRU: (array, normalized attrs, ndim) -> (epoch,
        # coords, values); most recently used at the end.
        self._payload_cache: OrderedDict[
            Tuple[str, Tuple[str, ...], int],
            Tuple[int, np.ndarray, Dict[str, np.ndarray]],
        ] = OrderedDict()
        #: Cache telemetry (the retention benchmark reports these).
        self.payload_hits = 0
        self.payload_misses = 0
        # Concurrency: mutations serialize on the write lock and bracket
        # themselves with the seqlock counter (odd while a mutation is
        # in flight); snapshot captures validate against it.  The
        # payload LRU gets its own lock — reads hit it from executor
        # threads while the coordinator mutates.
        self._write_lock = threading.RLock()
        self._write_seq = 0
        self._payload_lock = threading.RLock()
        # Last snapshot per array, valid while the array's epoch
        # stands (snapshots are immutable, so sharing one across
        # sessions is safe).
        self._snapshot_cache: Dict[str, ArraySnapshot] = {}

    # -- capacity ------------------------------------------------------
    def _grow(self, need: int) -> None:
        cap = len(self._size)
        if need <= cap:
            return
        new_cap = max(need, cap * 2)
        extra = new_cap - cap
        self._refs = np.concatenate(
            [self._refs, np.empty(extra, dtype=object)]
        )
        self._chunks = np.concatenate(
            [self._chunks, np.empty(extra, dtype=object)]
        )
        self._size = np.concatenate(
            [self._size, np.zeros(extra, dtype=np.float64)]
        )
        self._node = np.concatenate(
            [self._node, np.full(extra, -1, dtype=np.int64)]
        )

    def _alloc(self, count: int) -> np.ndarray:
        reuse = min(count, len(self._free))
        ids = np.empty(count, dtype=np.int64)
        if reuse:
            ids[:reuse] = self._free[len(self._free) - reuse:]
            del self._free[len(self._free) - reuse:]
        fresh = count - reuse
        if fresh:
            self._grow(self._hwm + fresh)
            ids[reuse:] = np.arange(
                self._hwm, self._hwm + fresh, dtype=np.int64
            )
            self._hwm += fresh
        return ids

    # -- reads ---------------------------------------------------------
    @property
    def chunk_count(self) -> int:
        """Number of live chunks across all arrays."""
        return len(self._id_of)

    @property
    def epoch(self) -> int:
        """Global mutation counter (bumps on any catalog mutation)."""
        return self._epoch

    def epoch_of(self, array: str) -> int:
        """One array's mutation counter (0 when the array is unknown)."""
        view = self._views.get(array)
        return view.epoch if view is not None else 0

    def payload_epoch_of(self, array: str) -> int:
        """One array's *content* mutation counter.

        Advances with inserts, merges, and removals but not with pure
        relocations — the payload cache keys on this, so rebalances
        leave cached concatenations valid (ownership is not part of a
        payload).
        """
        view = self._views.get(array)
        return view.payload_epoch if view is not None else 0

    def arrays(self) -> List[str]:
        """Names of arrays with at least one live chunk, sorted."""
        return sorted(
            a for a, v in self._views.items() if len(v.ids)
        )

    def contains(self, ref: ChunkRef) -> bool:
        """Whether ``ref`` is currently catalogued."""
        return ref in self._id_of

    def node_of(self, ref: ChunkRef) -> NodeId:
        """Node holding ``ref`` (KeyError when not catalogued)."""
        return int(self._node[self._id_of[ref]])

    def payload_of(self, ref: ChunkRef) -> ChunkData:
        """The stored payload handle of ``ref`` (KeyError when absent)."""
        return self._chunks[self._id_of[ref]]

    def _ids_of_array(self, array: str) -> np.ndarray:
        view = self._views.get(array)
        if view is None:
            return np.empty(0, dtype=np.int64)
        return view.ids

    def _gather_pairs(
        self, ids: np.ndarray
    ) -> List[Tuple[ChunkData, NodeId]]:
        """(payload, node) pairs of the given ids, in id order."""
        return list(
            zip(self._chunks[ids].tolist(), self._node[ids].tolist())
        )

    def _gather_columns(
        self, array: str, ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, Optional[object]]:
        """(sizes, nodes, schema) columns of the given ids, in id order."""
        return (
            self._size[ids],
            self._node[ids],
            self._schema_of.get(array),
        )

    def pairs_of_array(
        self, array: str
    ) -> List[Tuple[ChunkData, NodeId]]:
        """All (payload, node) pairs of one array, key-sorted.

        One object-column gather in view order — the catalog-mode
        implementation of ``ElasticCluster.chunks_of_array``.
        """
        return self._gather_pairs(self._ids_of_array(array))

    def placement_of_array(self, array: str) -> Dict[ChunkKey, NodeId]:
        """Chunk key → node map of one array, from the catalog columns."""
        ids = self._ids_of_array(array)
        return {
            ref.key: node
            for ref, node in zip(
                self._refs[ids].tolist(), self._node[ids].tolist()
            )
        }

    def scan_columns_of(
        self, array: str
    ) -> Tuple[np.ndarray, np.ndarray, Optional[object]]:
        """``(sizes, nodes, schema)`` columns of one array's live chunks.

        The cost model lowers whole-array scans from these directly
        (:func:`repro.query.cost.array_scan_columns`) instead of
        materializing a (chunk, node) pair list first.  The returned
        arrays are fresh copies (fancy-indexed gathers) in view order.
        """
        return self._gather_columns(array, self._ids_of_array(array))

    # -- region routing ------------------------------------------------
    def ids_in_region(self, array: str, region: Box) -> np.ndarray:
        """Live chunk ids of one array whose boxes intersect ``region``.

        The query box is converted into per-dimension chunk-coordinate
        intervals once
        (:meth:`repro.arrays.schema.ArraySchema.chunk_intervals_of`, the
        inverse of ``chunk_box``) and the selection is a single
        vectorized comparison over the view's ``(n, ndim)`` key matrix —
        no per-chunk ``Box`` construction, no Python loop.  The result
        preserves the view's key-sorted order, exactly the order the
        per-chunk ``intersects`` oracle walks.

        Unknown arrays yield an empty selection.  Raises
        :class:`~repro.errors.SchemaError` when the region's arity does
        not match the array's.
        """
        view = self._views.get(array)
        if view is None or not len(view.ids):
            return np.empty(0, dtype=np.int64)
        schema = self._schema_of[array]
        intervals = schema.chunk_intervals_of(region)
        if intervals is None:
            return np.empty(0, dtype=np.int64)
        lows, highs = intervals
        rows = view.rows
        mask = ((rows >= lows) & (rows <= highs)).all(axis=1)
        return view.ids[mask]

    def pairs_in_region(
        self, array: str, region: Box
    ) -> List[Tuple[ChunkData, NodeId]]:
        """Region-touched (payload, node) pairs, key-sorted.

        The region-scoped sibling of :meth:`pairs_of_array` — the
        catalog-mode implementation of
        ``ElasticCluster.chunks_in_region``.
        """
        return self._gather_pairs(self.ids_in_region(array, region))

    def region_scan_columns(
        self, array: str, region: Box
    ) -> Tuple[np.ndarray, np.ndarray, Optional[object]]:
        """``(sizes, nodes, schema)`` columns of a region's live chunks.

        The region-scoped sibling of :meth:`scan_columns_of`: the cost
        model charges region-touched scans straight from these gathers
        (:func:`repro.query.cost.region_scan_columns`) without
        materializing the (chunk, node) pair list.
        """
        return self._gather_columns(
            array, self.ids_in_region(array, region)
        )

    def region_read(
        self, array: str, region: Box
    ) -> Tuple[
        List[Tuple[ChunkData, NodeId]],
        Tuple[np.ndarray, np.ndarray, Optional[object]],
    ]:
        """Pairs *and* scan columns of a region, from one routing pass.

        Queries that both read the touched chunks and charge the scan
        (selections, the k-means working set) need the pair list and
        the byte/owner columns together; this runs
        :meth:`ids_in_region` once and gathers both from the same ids,
        instead of routing the region twice.
        """
        ids = self.ids_in_region(array, region)
        return (
            self._gather_pairs(ids),
            self._gather_columns(array, ids),
        )

    def payload_of_array(
        self,
        array: str,
        attrs: Sequence[str],
        ndim: int = 0,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Concatenated cells of one array, cached per payload epoch.

        Returns ``(coords, {attr: values})`` over the array's chunks in
        catalog (key-sorted) order.  The result is cached keyed by
        ``(array, attrs, ndim)`` — with ``attrs`` normalized (sorted,
        deduplicated), so permutations of one attr subset share a single
        entry — and the array's current payload epoch; any content
        mutation bumps that epoch and drops the entry, so a stale
        concatenation can never be served, while pure relocations
        (rebalances) keep the cache warm.  The cache is a small LRU
        bounded at :attr:`PAYLOAD_CACHE_MAX` entries, so attr subsets
        that stop being queried age out instead of pinning their
        concatenations forever.  Callers must treat the returned arrays
        as read-only.
        """
        key = (array, tuple(sorted(set(attrs))), int(ndim))
        with self._payload_lock, lockdep.held("payload-lru"):
            epoch = self.payload_epoch_of(array)
            cached = self._payload_cache.get(key)
            if cached is not None and cached[0] == epoch:
                self.payload_hits += 1
                self._payload_cache.move_to_end(key)
                return cached[1], cached[2]
            self.payload_misses += 1
        ids = self._ids_of_array(array)
        coords, values = concat_payload(
            self._chunks[ids].tolist(), attrs, ndim
        )
        self._store_payload(key, epoch, coords, values)
        return coords, values

    def payload_in_region(
        self,
        array: str,
        region: Box,
        attrs: Sequence[str],
        ndim: int = 0,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Cells of one array strictly inside ``region``, cached.

        The region-scoped sibling of :meth:`payload_of_array`: the
        result is the region's cells *after* the cell-level clip (not
        just the touched chunks' cells), so a hot selection served from
        the cache skips both the per-chunk concatenation and the
        per-chunk region mask.  Entries share the same LRU
        (:attr:`PAYLOAD_CACHE_MAX`) and the same payload-epoch
        invalidation as whole-array payloads — the region bounds simply
        extend the cache key — so content mutations drop them eagerly
        while pure relocations keep them warm, and regions that stop
        being queried age out of the LRU.  Callers must treat the
        returned arrays as read-only.
        """
        key = (
            array, tuple(sorted(set(attrs))), int(ndim),
            region.lo, region.hi,
        )
        with self._payload_lock, lockdep.held("payload-lru"):
            epoch = self.payload_epoch_of(array)
            cached = self._payload_cache.get(key)
            if cached is not None and cached[0] == epoch:
                self.payload_hits += 1
                self._payload_cache.move_to_end(key)
                return cached[1], cached[2]
            self.payload_misses += 1
        ids = self.ids_in_region(array, region)
        coords, values = concat_payload(
            self._chunks[ids].tolist(), attrs, ndim
        )
        if coords.shape[0]:
            mask = np.ones(coords.shape[0], dtype=bool)
            for d in range(len(region.lo)):
                mask &= coords[:, d] >= region.lo[d]
                mask &= coords[:, d] < region.hi[d]
            coords = coords[mask]
            values = {a: v[mask] for a, v in values.items()}
        self._store_payload(key, epoch, coords, values)
        return coords, values

    def _store_payload(
        self,
        key: Tuple,
        epoch: int,
        coords: np.ndarray,
        values: Dict[str, np.ndarray],
    ) -> None:
        """Install a concatenation in the LRU (lock held only here).

        The concatenation itself runs outside the payload lock so a
        slow concat never blocks cache hits on other threads; the
        install re-checks the array's payload epoch and drops the entry
        on the floor if a content mutation landed mid-concat — a stale
        concatenation must never enter the cache, even transiently,
        because a snapshot pinned at the new epoch could otherwise be
        served bytes from the old one.
        """
        with self._payload_lock, lockdep.held("payload-lru"):
            if self.payload_epoch_of(key[0]) != epoch:
                return
            self._payload_cache[key] = (epoch, coords, values)
            self._payload_cache.move_to_end(key)
            while len(self._payload_cache) > self.PAYLOAD_CACHE_MAX:
                self._payload_cache.popitem(last=False)

    # -- content delta log ---------------------------------------------
    def deltas_since(self, array: str, epoch: int) -> CatalogDelta:
        """One array's content mutations strictly after ``epoch``.

        The incremental-maintenance read path: a consumer snapshots
        :meth:`payload_epoch_of` after folding a batch in and passes
        that cursor next cycle; the log's epoch column is non-decreasing
        so the slice is one ``searchsorted`` plus an O(delta) gather.
        Pure relocations log nothing, so a cursor held across a
        rebalance sees an *empty* delta.  Unknown arrays (or a cursor at
        the current payload epoch) yield empty columns.
        """
        log = self._deltas.get(array)
        if log is None:
            return _EMPTY_LOG.since(0)
        return log.since(epoch)

    def delta_scan_columns(
        self, array: str, epoch: int
    ) -> Tuple[np.ndarray, np.ndarray, Optional[object]]:
        """``(sizes, nodes, schema)`` columns of a delta's touched rows.

        The maintenance-plan sibling of :meth:`scan_columns_of`: the
        cost model charges the incremental plan straight from the delta
        log's byte/owner columns — added *and* removed rows, since the
        operators read both — shaped exactly like the other catalog
        lowerings so :func:`repro.query.cost._lower_catalog_columns`
        applies unchanged.
        """
        delta = self.deltas_since(array, epoch)
        return delta.sizes, delta.nodes, self._schema_of.get(array)

    def verify_delta_log(self) -> None:
        """Replay every array's delta log and compare to the live set.

        Summing each ref's signs in log order must reproduce the
        catalog's current live chunks exactly: every live ref at net
        weight ``+1`` with its last-added handle being the stored one,
        every expired ref at net weight ``0``, and nothing else.  Run
        from ``ElasticCluster.check_consistency`` after every mutation
        batch in the test suites.

        Raises
        ------
        ClusterError
            On any divergence between the replayed and live sets.
        """
        replayed: Dict[str, Dict[ChunkRef, Tuple[int, ChunkData]]] = {}
        for array, log in self._deltas.items():
            net = replayed.setdefault(array, {})
            n = log.count
            for sign, ref, chunk in zip(
                log.signs[:n].tolist(),
                log.refs[:n].tolist(),
                log.chunks[:n].tolist(),
            ):
                weight, handle = net.get(ref, (0, None))
                weight += sign
                if weight < 0 or weight > 1:
                    raise ClusterError(
                        f"delta log of {array!r} reaches weight "
                        f"{weight} for {ref} during replay"
                    )
                net[ref] = (weight, chunk if sign > 0 else handle)
        for array, net in replayed.items():
            live = {
                ref: (1, self._chunks[i])
                for ref, i in self._id_of.items()
                if ref.array == array
            }
            survivors = {
                ref: entry for ref, entry in net.items()
                if entry[0] > 0
            }
            if set(survivors) != set(live):
                missing = set(live) - set(survivors)
                extra = set(survivors) - set(live)
                raise ClusterError(
                    f"delta-log replay of {array!r} diverges from the "
                    f"live set (missing={len(missing)}, "
                    f"extra={len(extra)})"
                )
            for ref, (_, handle) in survivors.items():
                if handle is not live[ref][1]:
                    raise ClusterError(
                        f"delta-log replay of {array!r} lands on a "
                        f"stale payload handle for {ref}"
                    )
        # Arrays with live chunks but no log cannot replay at all.
        for ref in self._id_of:
            if ref.array not in self._deltas:
                raise ClusterError(
                    f"array {ref.array!r} has live chunks but no "
                    "delta log"
                )

    # -- snapshots -----------------------------------------------------
    def _capture_array(self, array: str) -> ArraySnapshot:
        """Gather one array's frozen column slices (no validation)."""
        view = self._views.get(array)
        log = self._deltas.get(array)
        if log is not None:
            log_cols: Optional[Tuple[np.ndarray, ...]] = (
                log.epochs, log.signs, log.refs, log.chunks,
                log.sizes, log.nodes,
            )
            log_count = log.count
        else:
            log_cols, log_count = None, 0
        if view is None:
            width = 0
            return ArraySnapshot(
                array=array,
                schema=self._schema_of.get(array),
                epoch=0,
                payload_epoch=0,
                refs=np.empty(0, dtype=object),
                chunks=np.empty(0, dtype=object),
                sizes=np.empty(0, dtype=np.float64),
                nodes=np.empty(0, dtype=np.int64),
                rows=np.empty((0, width), dtype=np.int64),
                log_cols=log_cols,
                log_count=log_count,
                catalog=self,
            )
        ids = view.ids
        return ArraySnapshot(
            array=array,
            schema=self._schema_of.get(array),
            epoch=view.epoch,
            payload_epoch=view.payload_epoch,
            refs=self._refs[ids].copy(),
            chunks=self._chunks[ids].copy(),
            sizes=self._size[ids].copy(),
            nodes=self._node[ids].copy(),
            rows=view.rows.copy(),
            log_cols=log_cols,
            log_count=log_count,
            catalog=self,
        )

    def snapshot(self, array: str) -> ArraySnapshot:
        """An epoch-pinned :class:`ArraySnapshot` of one array.

        Snapshots are immutable, so the last capture per array is
        memoized and handed back as long as the array's epoch has not
        moved — pinning a quiescent array costs a dict probe, not a
        column gather (sessions opened per query or per refresh stay
        cheap between mutations).

        A fresh capture is optimistic: the column gather runs without
        the write lock and is validated against the mutation seqlock —
        if a mutation lands (or is in flight) during the gather, the
        capture is discarded and retried (:attr:`SNAPSHOT_RETRIES`
        times), then the final attempt takes the write lock and
        captures from a provably quiescent catalog.  Unknown arrays
        yield an empty snapshot at epoch 0, mirroring the live read
        surface.
        """
        cached = self._snapshot_cache.get(array)
        if cached is not None:
            seq = self._write_seq
            if not (seq & 1):
                view = self._views.get(array)
                if (
                    view is not None
                    and view.epoch == cached.epoch
                    and self._write_seq == seq
                ):
                    return cached
        for _ in range(self.SNAPSHOT_RETRIES):
            seq = self._write_seq
            if seq & 1:
                # A mutation is mid-flight; yield and re-read.
                continue
            try:
                snap = self._capture_array(array)
            except Exception:
                # Torn gather (columns rewritten under us): retry.
                continue
            if self._write_seq == seq:
                if len(snap):
                    self._snapshot_cache[array] = snap
                return snap
        with self._write_lock, lockdep.held("catalog-seqlock"):
            snap = self._capture_array(array)
            if len(snap):
                self._snapshot_cache[array] = snap
            return snap

    # -- mutation ------------------------------------------------------
    @contextmanager
    def _write(self) -> Iterator[None]:
        """Serialize a mutation and bracket it with the seqlock.

        The counter is odd exactly while a mutation is in flight, so an
        optimistic snapshot capture that observes the same even value
        before and after its gather is guaranteed consistent.
        """
        with self._write_lock, lockdep.held("catalog-seqlock"):
            self._write_seq += 1
            try:
                yield
            finally:
                self._write_seq += 1

    def _touch(self, arrays, contents: bool = True) -> None:
        """Bump the global epoch and every touched array's epoch.

        With ``contents`` (inserts, merges, removals) the arrays'
        payload epochs advance too and their cached payloads are dropped
        immediately — the epoch check alone would keep a stale
        concatenation pinned in memory until the same (array, attrs)
        combination is queried again, which for expired arrays is
        never.  Pure relocations pass ``contents=False``: ownership is
        not part of a payload, so the cache stays valid.
        """
        self._epoch += 1
        touched = set()
        for array in arrays:
            touched.add(array)
            view = self._views.get(array)
            if view is not None:
                view.epoch = self._epoch
                if contents:
                    view.payload_epoch = self._epoch
        if contents:
            with self._payload_lock, lockdep.held("payload-lru"):
                for key in [
                    k for k in self._payload_cache if k[0] in touched
                ]:
                    del self._payload_cache[key]

    def _log_deltas(
        self, log_by_array: Dict[str, List[Tuple]]
    ) -> None:
        """Append collected (sign, ref, chunk, size, node) rows.

        Called after :meth:`_touch`, so every appended row carries the
        epoch the mutation landed at — ``deltas_since(array, cursor)``
        with a cursor snapshotted from :meth:`payload_epoch_of` returns
        exactly the mutations the cursor holder has not yet folded in.
        """
        epoch = self._epoch
        for array, entries in log_by_array.items():
            if not entries:
                continue
            log = self._deltas.get(array)
            if log is None:
                log = self._deltas[array] = _DeltaLog()
            signs, refs, chunks, sizes, nodes = zip(*entries)
            log.append(epoch, signs, list(refs), list(chunks), sizes,
                       nodes)

    def put_batch(
        self,
        chunks: Sequence[ChunkData],
        nodes: Sequence[NodeId],
    ) -> None:
        """Record stored chunks (insert or merge), in batch order.

        ``chunks`` must be the objects the node stores actually hold
        after the physical put — for a merge the store replaces its
        payload with a new merged :class:`ChunkData`, and the catalog
        handle follows it.  New refs are interned and merged into their
        array's sorted view; known refs refresh their payload handle and
        bytes in place (their node must not change — merges never
        relocate).
        """
        if not chunks:
            return
        with self._write():
            id_of = self._id_of
            new_by_array: Dict[str, Tuple[List[int], List[ChunkKey]]] = {}
            log_by_array: Dict[str, List[Tuple]] = {}
            touched = set()
            for chunk, node in zip(chunks, nodes):
                ref = chunk.ref()
                array = ref.array
                touched.add(array)
                entries = log_by_array.setdefault(array, [])
                i = id_of.get(ref)
                if i is None:
                    i = int(self._alloc(1)[0])
                    id_of[ref] = i
                    self._refs[i] = ref
                    self._node[i] = node
                    if array not in self._schema_of:
                        self._schema_of[array] = chunk.schema
                    new_ids, new_keys = new_by_array.setdefault(
                        array, ([], [])
                    )
                    new_ids.append(i)
                    new_keys.append(ref.key)
                    entries.append(
                        (1, ref, chunk, chunk.size_bytes, node)
                    )
                else:
                    old = self._chunks[i]
                    if old is not chunk:
                        # A merge replaced the stored payload: the
                        # retiring handle leaves the ZSet, the merged
                        # one enters it.
                        old_node = int(self._node[i])
                        entries.append(
                            (-1, ref, old, float(self._size[i]),
                             old_node)
                        )
                        entries.append(
                            (1, ref, chunk, chunk.size_bytes, old_node)
                        )
                self._chunks[i] = chunk
                self._size[i] = chunk.size_bytes
            for array, (new_ids, new_keys) in new_by_array.items():
                view = self._views.get(array)
                if view is None:
                    view = _ArrayView(len(new_keys[0]))
                    self._views[array] = view
                view.insert(
                    np.asarray(new_ids, dtype=np.int64),
                    np.asarray(new_keys, dtype=np.int64),
                )
            self._touch(touched)
            self._log_deltas(log_by_array)

    def relocate_batch(
        self,
        refs: Sequence[ChunkRef],
        dests: Sequence[NodeId],
    ) -> None:
        """Reassign many chunks' owner nodes (sorted views unchanged)."""
        if not refs:
            return
        with self._write():
            id_of = self._id_of
            ids = np.fromiter(
                (id_of[r] for r in refs), dtype=np.int64,
                count=len(refs)
            )
            self._node[ids] = np.asarray(dests, dtype=np.int64)
            self._touch({r.array for r in refs}, contents=False)

    def remove_batch(self, refs: Sequence[ChunkRef]) -> None:
        """Drop chunks from the catalog; their ids join the free list.

        Each dropped chunk enters the array's delta log at ``-1`` with
        the payload handle, bytes, and owner it retired with — expiry is
        a negative delta to the incremental maintenance layer.
        """
        if not refs:
            return
        with self._write():
            by_array: Dict[str, List[int]] = {}
            log_by_array: Dict[str, List[Tuple]] = {}
            for ref in refs:
                i = self._id_of.pop(ref)
                log_by_array.setdefault(ref.array, []).append(
                    (-1, ref, self._chunks[i], float(self._size[i]),
                     int(self._node[i]))
                )
                self._refs[i] = None
                self._chunks[i] = None
                self._size[i] = 0.0
                self._node[i] = -1
                self._free.append(i)
                by_array.setdefault(ref.array, []).append(i)
            for array, dead in by_array.items():
                self._views[array].drop(
                    np.asarray(dead, dtype=np.int64)
                )
            self._touch(by_array)
            self._log_deltas(log_by_array)

    # -- compaction ----------------------------------------------------
    @property
    def column_capacity(self) -> int:
        """Allocated per-chunk column slots (live + dead + headroom)."""
        return len(self._size)

    @property
    def dead_slot_fraction(self) -> float:
        """Fraction of :attr:`column_capacity` not holding a live chunk."""
        cap = len(self._size)
        return 1.0 - len(self._id_of) / cap if cap else 0.0

    def compact(self, min_dead_fraction: float = 0.0) -> bool:
        """Re-intern live ids into dense slots and shrink the columns.

        Observable state — pairs, placements, scan columns, epochs, and
        live payload-cache entries — is unchanged; only the internal id
        space is rewritten (the per-array views are remapped in place,
        preserving their sort order).  Mirrors
        :meth:`repro.core.ledger.ArrayChunkLedger.compact`.

        Returns
        -------
        bool
            ``True`` when the columns were rebuilt.
        """
        with self._write():
            cap = len(self._size)
            live = len(self._id_of)
            if cap == 0 or self.dead_slot_fraction < min_dead_fraction:
                return False
            new_cap = max(self._INITIAL_CAPACITY, live)
            if not self._free and cap <= new_cap:
                return False
            old_ids = np.fromiter(
                self._id_of.values(), dtype=np.int64, count=live
            )
            old_ids.sort()
            mapping = np.full(cap, -1, dtype=np.int64)
            mapping[old_ids] = np.arange(live, dtype=np.int64)
            refs = self._refs[old_ids]
            new_refs = np.empty(new_cap, dtype=object)
            new_refs[:live] = refs
            new_chunks = np.empty(new_cap, dtype=object)
            new_chunks[:live] = self._chunks[old_ids]
            new_size = np.zeros(new_cap, dtype=np.float64)
            new_size[:live] = self._size[old_ids]
            new_node = np.full(new_cap, -1, dtype=np.int64)
            new_node[:live] = self._node[old_ids]
            self._refs = new_refs
            self._chunks = new_chunks
            self._size = new_size
            self._node = new_node
            self._id_of = dict(zip(refs.tolist(), range(live)))
            self._free = []
            self._hwm = live
            for view in self._views.values():
                if len(view.ids):
                    view.ids = mapping[view.ids]
            return True
