"""The paper's primary contribution: elastic partitioners + provisioning.

* Eight partitioning schemes (§4) behind one
  :class:`~repro.core.base.ElasticPartitioner` interface, constructed via
  :func:`~repro.core.registry.make_partitioner`.
* The :class:`~repro.core.provisioner.LeadingStaircase` PD control loop
  (§5.1) and its two tuners (§5.2):
  :func:`~repro.core.tuning.fit_sample_count` (Algorithm 1) and
  :class:`~repro.core.tuning.ScaleOutCostModel` (Eqs. 5–9).
"""

from repro.core.append import AppendPartitioner
from repro.core.base import ElasticPartitioner, Move, NodeId, RebalancePlan
from repro.core.catalog import (
    CATALOG_MODES,
    ChunkCatalog,
    catalog_mode,
    default_catalog_mode,
)
from repro.core.consistent_hash import ConsistentHashPartitioner
from repro.core.extendible_hash import ExtendibleHashPartitioner
from repro.core.hashing import hash_chunk_ref, stable_hash64
from repro.core.hilbert_curve import HilbertCurvePartitioner
from repro.core.kd_tree import KdTreePartitioner
from repro.core.provisioner import LeadingStaircase, ProvisioningDecision
from repro.core.quadtree import IncrementalQuadtreePartitioner
from repro.core.registry import (
    ALL_PARTITIONERS,
    PARTITIONER_CLASSES,
    make_partitioner,
)
from repro.core.round_robin import RoundRobinPartitioner
from repro.core.traits import (
    DISPLAY_NAMES,
    PAPER_ORDER,
    PAPER_TAXONOMY,
    PartitionerTraits,
)
from repro.core.tuning import (
    ScaleOutCostModel,
    best_planning_cycles,
    best_sample_count,
    fit_sample_count,
    sampling_error,
)
from repro.core.uniform_range import UniformRangePartitioner

__all__ = [
    "ALL_PARTITIONERS",
    "AppendPartitioner",
    "CATALOG_MODES",
    "ChunkCatalog",
    "ConsistentHashPartitioner",
    "DISPLAY_NAMES",
    "ElasticPartitioner",
    "ExtendibleHashPartitioner",
    "HilbertCurvePartitioner",
    "IncrementalQuadtreePartitioner",
    "KdTreePartitioner",
    "LeadingStaircase",
    "Move",
    "NodeId",
    "PAPER_ORDER",
    "PAPER_TAXONOMY",
    "PARTITIONER_CLASSES",
    "PartitionerTraits",
    "ProvisioningDecision",
    "RebalancePlan",
    "RoundRobinPartitioner",
    "ScaleOutCostModel",
    "UniformRangePartitioner",
    "best_planning_cycles",
    "best_sample_count",
    "catalog_mode",
    "default_catalog_mode",
    "fit_sample_count",
    "hash_chunk_ref",
    "make_partitioner",
    "sampling_error",
    "stable_hash64",
]
