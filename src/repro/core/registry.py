"""Partitioner factory: build any scheme from its registry name.

The harness, benchmarks, and examples construct partitioners through
:func:`make_partitioner` so they can sweep the full Table-1 lineup without
knowing each algorithm's constructor signature.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from repro.arrays.coords import Box
from repro.core.append import AppendPartitioner
from repro.core.base import ElasticPartitioner, NodeId
from repro.core.consistent_hash import (
    DEFAULT_VIRTUAL_NODES,
    ConsistentHashPartitioner,
)
from repro.core.extendible_hash import ExtendibleHashPartitioner
from repro.core.hilbert_curve import HilbertCurvePartitioner
from repro.core.kd_tree import KdTreePartitioner
from repro.core.quadtree import IncrementalQuadtreePartitioner
from repro.core.round_robin import RoundRobinPartitioner
from repro.core.uniform_range import (
    DEFAULT_HEIGHT,
    UniformRangePartitioner,
)
from repro.errors import PartitioningError

#: All registered schemes, keyed by :attr:`ElasticPartitioner.name`.
PARTITIONER_CLASSES: Dict[str, Type[ElasticPartitioner]] = {
    cls.name: cls
    for cls in (
        AppendPartitioner,
        ConsistentHashPartitioner,
        ExtendibleHashPartitioner,
        HilbertCurvePartitioner,
        IncrementalQuadtreePartitioner,
        KdTreePartitioner,
        RoundRobinPartitioner,
        UniformRangePartitioner,
    )
}

ALL_PARTITIONERS = tuple(sorted(PARTITIONER_CLASSES))


def make_partitioner(
    name: str,
    nodes: Sequence[NodeId],
    *,
    grid: Optional[Box] = None,
    node_capacity_bytes: Optional[float] = None,
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    height: int = DEFAULT_HEIGHT,
    spatial_dims: Optional[Sequence[int]] = None,
) -> ElasticPartitioner:
    """Construct a partitioner by registry name.

    Args:
        name: one of :data:`ALL_PARTITIONERS`.
        nodes: initial node ids.
        grid: chunk-grid box — required by the range schemes
            (``hilbert_curve``, ``incremental_quadtree``, ``kd_tree``,
            ``uniform_range``).
        node_capacity_bytes: required by ``append``.
        virtual_nodes: ring points per node for ``consistent_hash``.
        height: tree height for ``uniform_range``.
        spatial_dims: bounded (spatial) dimension indices of the grid.
            The range schemes prioritize these: K-d Tree cycles them
            before the unbounded time dimension, Quadtree and Uniform
            Range subdivide only them.  ``None`` treats every dimension
            equally.

    Raises:
        PartitioningError: unknown name or missing required argument.
    """
    if name not in PARTITIONER_CLASSES:
        raise PartitioningError(
            f"unknown partitioner {name!r}; choose from "
            f"{', '.join(ALL_PARTITIONERS)}"
        )

    def need_grid() -> Box:
        if grid is None:
            raise PartitioningError(f"partitioner {name!r} requires grid=")
        return grid

    if name == "append":
        if node_capacity_bytes is None:
            raise PartitioningError(
                "append requires node_capacity_bytes="
            )
        return AppendPartitioner(nodes, node_capacity_bytes)
    if name == "round_robin":
        return RoundRobinPartitioner(nodes)
    if name == "consistent_hash":
        return ConsistentHashPartitioner(nodes, virtual_nodes=virtual_nodes)
    if name == "extendible_hash":
        return ExtendibleHashPartitioner(nodes)
    if name == "hilbert_curve":
        return HilbertCurvePartitioner(nodes, need_grid().shape)
    if name == "incremental_quadtree":
        return IncrementalQuadtreePartitioner(
            nodes, need_grid(), split_dims=spatial_dims
        )
    if name == "kd_tree":
        # Restrict splits to the spatial dimensions (time only as a last
        # resort), so every host keeps every epoch of its region.
        return KdTreePartitioner(
            nodes, need_grid(), split_order=spatial_dims
        )
    if name == "uniform_range":
        return UniformRangePartitioner(
            nodes, need_grid(), height=height, split_dims=spatial_dims
        )
    raise PartitioningError(f"unhandled partitioner {name!r}")  # pragma: no cover
