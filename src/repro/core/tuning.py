"""Tuning the leading staircase to a workload (paper §5.2).

Two workload-specific parameters shape the staircase:

* ``s`` — how many demand samples feed the derivative term.  Fitted by the
  *what-if analysis* of Algorithm 1: replay the observed demand history,
  predict each next-cycle demand change with an ``s``-sample derivative,
  and pick the ``s`` with the lowest mean absolute error.
* ``p`` — how many future cycles each scale-out provisions for.  Fitted by
  an *analytical cost model* (Eqs. 5–9) that simulates ``m`` future cycles
  for each candidate ``p`` and totals node-hours, the same unit as the
  workload-cost metric of Eq. 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ProvisioningError


def sampling_error(history: Sequence[float], s: int) -> float:
    """Mean absolute error of an ``s``-sample derivative predictor.

    Implements the inner loop of Algorithm 1: slide over the demand
    history, estimate ``Δ_est = (l_i - l_{i-s}) / s``, compare with the
    observed next-cycle change ``Δ_i = l_{i+1} - l_i``, and average the
    absolute differences.

    Args:
        history: demand observations ``l_1 .. l_d`` (post-insert loads).
        s: sample count to evaluate.

    Raises:
        ProvisioningError: when the history is too short to score ``s``
            (needs at least ``s + 2`` points).
    """
    d = len(history)
    if s < 1:
        raise ProvisioningError(f"s must be >= 1, got {s}")
    if d < s + 2:
        raise ProvisioningError(
            f"history of {d} cycles cannot score s={s} "
            f"(needs >= {s + 2})"
        )
    total = 0.0
    count = 0
    # Paper indexing: for i in s+1 .. d-1 (1-based li exists and li+1 too).
    for i in range(s, d - 1):
        delta_est = (history[i] - history[i - s]) / s
        delta_obs = history[i + 1] - history[i]
        total += abs(delta_obs - delta_est)
        count += 1
    return total / count


def sampling_error_window(
    history: Sequence[float],
    s: int,
    start: int,
    end: Optional[int] = None,
) -> float:
    """Mean absolute prediction error over predictions ``start .. end-1``.

    Like :func:`sampling_error`, but scores only the predictions for
    cycles in ``[start, end)`` (0-based indices into ``history``); the
    derivative may still reach back before ``start``.  Used for the
    train/test split of Table 2 — train on the first third, test on the
    rest.
    """
    d = len(history)
    if end is None:
        end = d
    if s < 1:
        raise ProvisioningError(f"s must be >= 1, got {s}")
    lo = max(s, start)
    if lo >= end - 1 and lo >= d - 1:
        raise ProvisioningError(
            f"window [{start}, {end}) yields no scoreable predictions "
            f"for s={s}"
        )
    total = 0.0
    count = 0
    for i in range(lo, min(end, d) - 1):
        delta_est = (history[i] - history[i - s]) / s
        delta_obs = history[i + 1] - history[i]
        total += abs(delta_obs - delta_est)
        count += 1
    if count == 0:
        raise ProvisioningError(
            f"window [{start}, {end}) yields no scoreable predictions "
            f"for s={s}"
        )
    return total / count


def fit_sample_count(
    history: Sequence[float],
    max_samples: int,
) -> Dict[int, float]:
    """Algorithm 1: score ``s = 1 .. ψ`` against a demand history.

    Returns:
        Mapping from each feasible ``s`` to its mean prediction error.
        Pick the minimum with :func:`best_sample_count`.
    """
    if max_samples < 1:
        raise ProvisioningError(
            f"max_samples must be >= 1, got {max_samples}"
        )
    errors: Dict[int, float] = {}
    for s in range(1, max_samples + 1):
        if len(history) < s + 2:
            break
        errors[s] = sampling_error(history, s)
    if not errors:
        raise ProvisioningError(
            f"history of {len(history)} cycles is too short to fit s"
        )
    return errors


def best_sample_count(errors: Dict[int, float]) -> int:
    """The ``s`` with the minimum error (ties go to the smaller ``s``)."""
    if not errors:
        raise ProvisioningError("no errors to minimize")
    return min(errors, key=lambda s: (errors[s], s))


# ----------------------------------------------------------------------
# analytical cost model for p (Eqs. 5-9)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CycleEstimate:
    """Modeled phases of one future workload cycle."""

    cycle: int
    load: float
    nodes: int
    insert_time: float
    reorg_time: float
    query_time: float

    @property
    def node_hours(self) -> float:
        """Cycle duration times node count (the Eq. 1 summand)."""
        return self.nodes * (
            self.insert_time + self.reorg_time + self.query_time
        )


@dataclass
class ScaleOutCostModel:
    """Analytical node-hour model for a candidate planning horizon ``p``.

    Args:
        node_capacity: node capacity ``c`` (GB).
        io_cost: ``δ`` — seconds of I/O per GB written locally.
        network_cost: ``t`` — seconds per GB shipped over the network.
        insert_rate: ``μ`` — GB of new data per cycle (derived from the
            increase in storage over the last ``s`` cycles).
        initial_load: ``l_0`` — present storage load (GB).
        initial_nodes: ``N_0`` — present cluster size.
        base_query_time: ``w_0`` — last observed query-workload latency
            (hours, or any time unit; node-hours inherit it).
        base_query_load: the load at which ``w_0`` was measured (defaults
            to ``initial_load``).
        base_query_nodes: the node count at which ``w_0`` was measured
            (defaults to ``initial_nodes``).

    Times from ``δ``/``t`` are in whatever unit those constants use per GB;
    the harness uses hours throughout so the total is node-hours (Eq. 9).
    """

    node_capacity: float
    io_cost: float
    network_cost: float
    insert_rate: float
    initial_load: float
    initial_nodes: int
    base_query_time: float
    base_query_load: Optional[float] = None
    base_query_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node_capacity <= 0:
            raise ProvisioningError("node_capacity must be positive")
        if self.initial_nodes < 1:
            raise ProvisioningError("initial_nodes must be >= 1")
        if self.insert_rate < 0:
            raise ProvisioningError("insert_rate must be >= 0")
        if self.base_query_load is None:
            self.base_query_load = self.initial_load
        if self.base_query_nodes is None:
            self.base_query_nodes = self.initial_nodes

    # ------------------------------------------------------------------
    def projected_load(self, cycle: int) -> float:
        """Eq. 5: ``l_i = l_0 + μ * i``."""
        return self.initial_load + self.insert_rate * cycle

    def simulate(self, p: int, cycles: int) -> List[CycleEstimate]:
        """Model ``cycles`` future iterations under planning horizon ``p``.

        Implements Eqs. 5–8 per cycle:

        * node count: keep ``N_{i-1}`` while ``l_i`` fits, else re-size to
          ``ceil((l_0 + μ(i + p)) / c)``;
        * insert time (Eq. 6): coordinator writes ``1/N`` locally at ``δ``
          and ships ``(N-1)/N`` at ``t``;
        * reorg time (Eq. 7): average post-expansion load per node times
          the number of new nodes, at network rate plus the receiving
          node's I/O (§5.2 prices both inserts *and* reorganizations with
          I/O and network terms);
        * query time (Eq. 8): the observed ``w_0`` scaled by load growth
          and inversely by parallelism.
        """
        if p < 0:
            raise ProvisioningError(f"p must be >= 0, got {p}")
        if cycles < 1:
            raise ProvisioningError(f"cycles must be >= 1, got {cycles}")

        base_load = self.base_query_load or self.initial_load or 1.0
        base_nodes = self.base_query_nodes or self.initial_nodes
        estimates: List[CycleEstimate] = []
        prev_nodes = self.initial_nodes
        for i in range(1, cycles + 1):
            load = self.projected_load(i)
            if load <= prev_nodes * self.node_capacity:
                nodes = prev_nodes
            else:
                nodes = max(
                    prev_nodes,
                    math.ceil(
                        (self.initial_load + self.insert_rate * (i + p))
                        / self.node_capacity
                    ),
                )
            mu = self.insert_rate
            insert_time = (
                mu * (1.0 / nodes) * self.io_cost
                + mu * ((nodes - 1) / nodes) * self.network_cost
            )
            if nodes > prev_nodes:
                reorg_time = (
                    (load / nodes)
                    * (nodes - prev_nodes)
                    * (self.network_cost + self.io_cost)
                )
            else:
                reorg_time = 0.0
            query_time = (
                self.base_query_time
                * (load / base_load if base_load else 1.0)
                * (base_nodes / nodes)
            )
            estimates.append(
                CycleEstimate(
                    cycle=i,
                    load=load,
                    nodes=nodes,
                    insert_time=insert_time,
                    reorg_time=reorg_time,
                    query_time=query_time,
                )
            )
            prev_nodes = nodes
        return estimates

    def cost(self, p: int, cycles: int) -> float:
        """Eq. 9: summed node-hours of ``cycles`` iterations under ``p``."""
        return float(
            sum(e.node_hours for e in self.simulate(p, cycles))
        )

    def fit_planning_cycles(
        self, candidates: Sequence[int], cycles: int
    ) -> Dict[int, float]:
        """Cost every candidate ``p``; minimize with :func:`best_planning_cycles`."""
        if not candidates:
            raise ProvisioningError("no candidate planning horizons")
        return {p: self.cost(p, cycles) for p in candidates}


def best_planning_cycles(costs: Dict[int, float]) -> int:
    """The ``p`` with minimum modeled cost (ties go to the smaller ``p``)."""
    if not costs:
        raise ProvisioningError("no costs to minimize")
    return min(costs, key=lambda p: (costs[p], p))
