"""Incremental Quadtree partitioner (paper §4.2, after Finkel & Bentley [20]).

A classic quadtree assigns one host per leaf, which breaks incremental
scale-out: splitting a full host would scatter its data over four nodes,
three of them new.  The paper's *Incremental* Quadtree instead lets a host
own one or more orthant cells and splits them gradually:

* If the splitting host owns a **single** cell, the cell is quartered
  (2^k orthants for k splittable dimensions) and the quarter — or pair of
  *face-adjacent* quarters — whose summed bytes come closest to **half** of
  the host's storage becomes the new host's partition.
* If the host was **already quartered**, the cell or face-adjacent pair of
  cells closest to halving the storage moves instead (no further
  subdivision), which keeps each host's partition at exactly one level of
  the tree and contiguous in array space.

The scheme is incremental (only the split host sends data), skew-aware (it
always splits the most loaded host, weighing bytes), and n-dimensionally
clustered (cells are boxes of chunk-grid space).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arrays.chunk import ChunkRef
from repro.arrays.coords import Box
from repro.core.base import ElasticPartitioner, Move, NodeId
from repro.core.traits import PAPER_TAXONOMY, PartitionerTraits
from repro.errors import PartitioningError


class IncrementalQuadtreePartitioner(ElasticPartitioner):
    """Orthant-cell ownership with adjacent-quarter regrouping.

    Args:
        nodes: initial node ids.  The first owns the whole grid; each
            additional initial node triggers a (volume-weighted) split.
        grid: the chunk-grid box being subdivided.  Keys outside the grid
            (unbounded dimensions) are clamped onto its boundary cells for
            ownership decisions, so placement never fails.
        split_dims: the dimensions whose planes the quadtree quarters.
            A spatio-temporal array should pass its *spatial* dimensions
            (the classic quadtree subdivides 2-d space, paper §4.2); the
            unbounded time dimension then rides along inside each cell,
            so monotone growth fills every host instead of only the
            latest-time owner.  Defaults to all dimensions.
        allow_pairs: when True (the paper's algorithm) a split may hand a
            *pair* of face-adjacent quarters to the new host, targeting
            half the donor's bytes; when False only single quarters move
            (the naive variant the ``bench_ablation_quadtree_split``
            benchmark compares against).
    """

    name = "incremental_quadtree"
    traits: PartitionerTraits = PAPER_TAXONOMY["incremental_quadtree"]

    def __init__(
        self,
        nodes: Sequence[NodeId],
        grid: Box,
        split_dims: Optional[Sequence[int]] = None,
        allow_pairs: bool = True,
    ) -> None:
        super().__init__(nodes)
        self.grid = grid
        self.allow_pairs = bool(allow_pairs)
        if split_dims is None:
            split_dims = tuple(range(grid.ndim))
        dims = sorted({int(d) for d in split_dims})
        if not dims or any(not 0 <= d < grid.ndim for d in dims):
            raise PartitioningError(
                f"split_dims {split_dims} invalid for a {grid.ndim}-d grid"
            )
        self.split_dims = tuple(dims)
        self._cells: Dict[NodeId, List[Box]] = {self._nodes[0]: [grid]}
        for node in self._nodes[1:]:
            self._split_heaviest_onto(node)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def cells_of(self, node: NodeId) -> List[Box]:
        """The orthant cells one host currently owns."""
        try:
            return list(self._cells[node])
        except KeyError:
            raise PartitioningError(
                f"node {node} owns no quadtree cells"
            ) from None

    def all_cells(self) -> List[Tuple[Box, NodeId]]:
        """Every (cell, owner) pair — the full partitioning table."""
        out = []
        for node in sorted(self._cells):
            for box in self._cells[node]:
                out.append((box, node))
        return out

    def _clamp(self, key: Sequence[int]) -> Tuple[int, ...]:
        return tuple(
            min(max(int(k), lo), hi - 1)
            for k, lo, hi in zip(key, self.grid.lo, self.grid.hi)
        )

    def locate_key(self, key: Sequence[int]) -> NodeId:
        """Owner of the cell containing (the clamped) ``key``."""
        clamped = self._clamp(key)
        for node in sorted(self._cells):
            for box in self._cells[node]:
                if box.contains(clamped):
                    return node
        raise PartitioningError(
            f"quadtree cells do not tile the grid (key {key})"
        )

    # ------------------------------------------------------------------
    def _place_new(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        return self.locate_key(ref.key)

    def _extend(self, new_nodes: Sequence[NodeId]) -> List[Move]:
        moves: List[Move] = []
        for new_node in new_nodes:
            moves.extend(self._split_heaviest_onto(new_node))
        return moves

    # ------------------------------------------------------------------
    def _split_heaviest_onto(self, new_node: NodeId) -> List[Move]:
        candidates = [n for n in self._cells if n != new_node]
        for donor in sorted(
            candidates, key=lambda n: (-self._loads.get(n, 0.0), n)
        ):
            result = self._try_split(donor, new_node)
            if result is not None:
                return result
        raise PartitioningError(
            "no host's cells can be split further; grid exhausted"
        )

    def _try_split(
        self, donor: NodeId, new_node: NodeId
    ) -> Optional[List[Move]]:
        cells = self._cells[donor]
        donor_chunks = self.chunks_on(donor)

        if len(cells) == 1:
            children = self._orthants(cells[0])
            if len(children) == 1:
                return None  # single grid cell: unsplittable
        else:
            children = list(cells)

        cell_bytes = self._bytes_per_cell(children, donor_chunks)
        total = sum(cell_bytes)
        subset = self._best_subset(children, cell_bytes, total)
        if subset is None:
            return None

        keep = [children[i] for i in range(len(children)) if i not in subset]
        give = [children[i] for i in sorted(subset)]
        if not keep:
            return None  # never strip a host of its entire partition
        self._cells[donor] = keep
        self._cells[new_node] = give

        moves = []
        for ref in donor_chunks:
            clamped = self._clamp(ref.key)
            if any(box.contains(clamped) for box in give):
                moves.append(self._relocate(ref, new_node))
        return moves

    def _orthants(self, box: Box) -> List[Box]:
        """Quarter a cell along the configured split dimensions only."""
        children = [box]
        for dim in self.split_dims:
            nxt: List[Box] = []
            for b in children:
                if b.hi[dim] - b.lo[dim] >= 2:
                    nxt.extend(b.halve(dim))
                else:
                    nxt.append(b)
            children = nxt
        return children

    def _bytes_per_cell(
        self, cells: Sequence[Box], chunks: Sequence[ChunkRef]
    ) -> List[float]:
        sizes = [0.0] * len(cells)
        for ref in chunks:
            clamped = self._clamp(ref.key)
            for i, box in enumerate(cells):
                if box.contains(clamped):
                    sizes[i] += self._sizes[ref]
                    break
        return sizes

    def _best_subset(
        self,
        cells: Sequence[Box],
        cell_bytes: Sequence[float],
        total: float,
    ) -> Optional[Tuple[int, ...]]:
        """The single cell or face-adjacent pair closest to half the bytes.

        When the donor holds no data (total == 0) the tie-break is cell
        *volume*, so initial configurations still spread array space
        sensibly.
        """
        if len(cells) < 2:
            return None
        half = total / 2.0

        candidates: List[Tuple[int, ...]] = [(i,) for i in range(len(cells))]
        if self.allow_pairs:
            for i, j in combinations(range(len(cells)), 2):
                if len(cells) - 2 < 1:
                    continue  # a pair may not take the donor's whole estate
                if cells[i].face_adjacent(cells[j]):
                    candidates.append((i, j))

        def score(subset: Tuple[int, ...]) -> Tuple[float, float, int]:
            got = sum(cell_bytes[i] for i in subset)
            vol = sum(cells[i].volume for i in subset)
            vol_half = sum(c.volume for c in cells) / 2.0
            return (
                abs(got - half),
                abs(vol - vol_half),
                len(subset),
            )

        return min(candidates, key=lambda s: (score(s), s))
