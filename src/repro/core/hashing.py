"""Deterministic hashing for placement decisions.

Python's built-in ``hash`` is salted per process (``PYTHONHASHSEED``), which
would make partitioning non-reproducible across runs and across the workers
of the multiprocessing executor.  All hash partitioners therefore use
blake2b-based 64-bit digests of a canonical byte encoding.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Sequence, Union

from repro.arrays.chunk import ChunkRef

_MASK64 = (1 << 64) - 1


def stable_hash64(data: bytes) -> int:
    """64-bit blake2b digest of raw bytes."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def hash_chunk_ref(ref: ChunkRef) -> int:
    """Stable 64-bit hash of a chunk identity.

    Both the array name and the chunk key participate, so two arrays'
    chunks spread independently on hash rings.  Range partitioners, by
    contrast, place on the key alone and therefore co-locate
    dimension-aligned arrays — that asymmetry mirrors the paper's
    observation that hash partitioning serves equi-joins while range
    partitioning serves spatial queries.
    """
    payload = ref.array.encode("utf-8") + b"\x00" + struct.pack(
        f">{len(ref.key)}q", *ref.key
    )
    return stable_hash64(payload)


def hash_node_point(node: int, replica: int) -> int:
    """Ring position of one virtual node replica of a physical node."""
    return stable_hash64(struct.pack(">qq", int(node), int(replica)))


def hash_key(key: Sequence[int], salt: Union[str, bytes] = b"") -> int:
    """Stable 64-bit hash of a bare coordinate tuple (tests, extensions)."""
    if isinstance(salt, str):
        salt = salt.encode("utf-8")
    payload = salt + b"\x00" + struct.pack(f">{len(key)}q", *key)
    return stable_hash64(payload)
