"""Extendible Hash partitioner (paper §4.2, after Fagin et al. [19]).

A directory of ``2^g`` slots (``g`` = global depth) maps the low ``g`` bits
of a chunk's hash to a bucket; each bucket lives on one node and records a
*local depth* — how many hash bits it actually discriminates.

Scale-out is skew-aware: for each new node the partitioner finds the most
heavily burdened node (by **bytes**), picks its largest bucket, and splits
it on the next more significant hash bit.  Chunks whose new bit is set move
to a fresh bucket on the new node; everything else stays put, so the
reorganization is incremental.  Because the partitioning table is flat
(pure hash space), the scheme ignores the array's multidimensional
structure — good balance, no spatial locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.arrays.chunk import ChunkRef
from repro.core.base import ElasticPartitioner, Move, NodeId
from repro.core.hashing import hash_chunk_ref
from repro.core.traits import PAPER_TAXONOMY, PartitionerTraits
from repro.errors import PartitioningError

#: Hard ceiling on global depth; 2^20 directory slots is far beyond any
#: experiment in this repository and guards against runaway splitting.
MAX_GLOBAL_DEPTH = 20


@dataclass
class Bucket:
    """One hash bucket: a node assignment plus membership bookkeeping."""

    bucket_id: int
    local_depth: int
    pattern: int  # the low `local_depth` bits shared by all members
    node: NodeId
    members: Set[ChunkRef] = field(default_factory=set)
    bytes: float = 0.0


class ExtendibleHashPartitioner(ElasticPartitioner):
    """Directory-based extendible hashing over chunk-hash space."""

    name = "extendible_hash"
    traits: PartitionerTraits = PAPER_TAXONOMY["extendible_hash"]

    def __init__(self, nodes: Sequence[NodeId]) -> None:
        super().__init__(nodes)
        # Start with one bucket per directory slot at the smallest global
        # depth that gives every initial node at least one bucket.
        g = 0
        while (1 << g) < len(self._nodes):
            g += 1
        self._global_depth = g
        self._buckets: Dict[int, Bucket] = {}
        self._directory: List[int] = []
        self._next_bucket_id = 0
        for pattern in range(1 << g):
            bucket = self._new_bucket(
                local_depth=g,
                pattern=pattern,
                node=self._nodes[pattern % len(self._nodes)],
            )
            self._directory.append(bucket.bucket_id)

    # ------------------------------------------------------------------
    @property
    def global_depth(self) -> int:
        return self._global_depth

    @property
    def directory_size(self) -> int:
        return len(self._directory)

    def buckets(self) -> List[Bucket]:
        """All buckets (sorted by id, for inspection and tests)."""
        return [self._buckets[b] for b in sorted(self._buckets)]

    def _new_bucket(self, local_depth: int, pattern: int, node: NodeId
                    ) -> Bucket:
        bucket = Bucket(
            bucket_id=self._next_bucket_id,
            local_depth=local_depth,
            pattern=pattern,
            node=node,
        )
        self._next_bucket_id += 1
        self._buckets[bucket.bucket_id] = bucket
        return bucket

    def bucket_for(self, ref: ChunkRef) -> Bucket:
        """Directory lookup by the low ``g`` bits of the chunk hash."""
        slot = hash_chunk_ref(ref) & ((1 << self._global_depth) - 1)
        return self._buckets[self._directory[slot]]

    # ------------------------------------------------------------------
    def _place_new(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        bucket = self.bucket_for(ref)
        bucket.members.add(ref)
        bucket.bytes += size_bytes
        return bucket.node

    # Keep the invariant ``bucket.bytes == sum of member ledger sizes``:
    # scale-out splits and :meth:`remove` subtract full ledger sizes, so
    # merges and size updates must credit the bucket too.
    def _merge_existing(self, ref, size_bytes, node):
        self.bucket_for(ref).bytes += size_bytes
        return super()._merge_existing(ref, size_bytes, node)

    def update_size(self, ref: ChunkRef, delta_bytes: float) -> None:
        super().update_size(ref, delta_bytes)
        self.bucket_for(ref).bytes += delta_bytes

    def place_batch(self, refs_and_sizes):
        """Amortized batch placement.

        Placement never changes the directory, so the depth mask and
        the directory/bucket tables are hoisted out of the loop and
        each new chunk pays one hash + two array lookups instead of the
        full ``place`` → ``bucket_for`` dispatch chain.  Equivalent to
        sequential :meth:`place` calls per the base class's batch
        contract.
        """
        first_sizes, merges = self._partition_batch(list(refs_and_sizes))
        commit_nodes: List[NodeId] = []
        mask = (1 << self._global_depth) - 1
        directory = self._directory
        buckets = self._buckets
        for ref, size in first_sizes.items():
            bucket = buckets[directory[hash_chunk_ref(ref) & mask]]
            bucket.members.add(ref)
            bucket.bytes += size
            commit_nodes.append(bucket.node)
        # Merges credit their bucket too (bucket.bytes mirrors the
        # ledger), matching the scalar path's _merge_existing override.
        for ref, size in merges:
            buckets[directory[hash_chunk_ref(ref) & mask]].bytes += \
                float(size)
        return self._commit_batch(first_sizes, commit_nodes, merges)

    def _forget(self, ref, size_bytes, node) -> None:
        bucket = self.bucket_for(ref)
        bucket.members.discard(ref)
        bucket.bytes -= size_bytes

    def _adopt_batch(self, entries) -> None:
        # Rebuild bucket membership so ``bucket.bytes == sum of member
        # ledger sizes`` holds for adopted chunks (removes and merges
        # debit/credit buckets).  The directory itself restarts at its
        # initial depth — bucket→node history is not persisted.
        for ref, size, _node in entries:
            bucket = self.bucket_for(ref)
            bucket.members.add(ref)
            bucket.bytes += float(size)

    def _extend(self, new_nodes: Sequence[NodeId]) -> List[Move]:
        moves: List[Move] = []
        preexisting = [
            n for n in self._nodes if n not in set(new_nodes)
        ]
        for new_node in new_nodes:
            split_moves = self._split_heaviest_onto(new_node, preexisting)
            moves.extend(split_moves)
            preexisting.append(new_node)
        return moves

    def _split_heaviest_onto(
        self, new_node: NodeId, candidates: Sequence[NodeId]
    ) -> List[Move]:
        """Split the largest bucket of the most loaded node onto a new node."""
        if not candidates:
            return []
        donor = self.heaviest_node(candidates)
        donor_buckets = [
            b for b in self._buckets.values() if b.node == donor
        ]
        if not donor_buckets:
            return []
        bucket = max(
            donor_buckets, key=lambda b: (b.bytes, -b.bucket_id)
        )

        if bucket.local_depth >= MAX_GLOBAL_DEPTH:
            raise PartitioningError(
                "extendible hash reached maximum directory depth"
            )
        if bucket.local_depth == self._global_depth:
            # Double the directory: every slot s gains a twin s + 2^g
            # pointing at the same bucket.
            self._directory = self._directory + list(self._directory)
            self._global_depth += 1

        # Split `bucket` on bit `local_depth`: members with that bit set
        # migrate to a sibling bucket hosted by the new node.
        bit = 1 << bucket.local_depth
        sibling = self._new_bucket(
            local_depth=bucket.local_depth + 1,
            pattern=bucket.pattern | bit,
            node=new_node,
        )
        bucket.local_depth += 1

        # Repoint directory slots that match the sibling's pattern.
        depth_mask = (1 << sibling.local_depth) - 1
        for slot in range(len(self._directory)):
            if (
                self._directory[slot] == bucket.bucket_id
                and (slot & depth_mask) == sibling.pattern
            ):
                self._directory[slot] = sibling.bucket_id

        moves: List[Move] = []
        migrating = sorted(
            (
                ref for ref in bucket.members
                if hash_chunk_ref(ref) & bit
            ),
            key=lambda r: (r.array, r.key),
        )
        for ref in migrating:
            size = self._sizes[ref]
            bucket.members.discard(ref)
            bucket.bytes -= size
            sibling.members.add(ref)
            sibling.bytes += size
            moves.append(self._relocate(ref, new_node))
        return moves
