"""Uniform Range partitioner (paper §4.2).

A tall, balanced binary tree subdivides the array's dimension space: with
height ``h`` the tree has ``l = 2^h`` leaves (fewer when the grid runs out
of splittable extent), each an equal-depth box of chunk-grid space, ordered
by tree traversal so consecutive leaves are spatially adjacent.

For ``n`` hosts the leaves are dealt out in **contiguous blocks of
``l / n``** in traversal order, which preserves multidimensional clustered
access without sacrificing (logical) load balance.  On scale-out the
partitioner recomputes the ``l / n`` slices for the new node count and
moves every leaf whose block owner changed — a **global** reorganization,
linear in ``l``, that may shift data between preexisting nodes.  This is
the one non-incremental scheme in the paper's lineup and the counterpoint
that motivates incremental elasticity.  It is also not skew-aware: leaves
are weighted by count, never bytes, so heavy point skew (AIS) lands many
hot chunks in one leaf block (§6.2.2: "Uniform Range is brittle to skew").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.arrays.chunk import ChunkRef
from repro.arrays.coords import Box
from repro.core.base import ElasticPartitioner, Move, NodeId
from repro.core.traits import PAPER_TAXONOMY, PartitionerTraits
from repro.errors import PartitioningError

DEFAULT_HEIGHT = 8


def build_leaves(
    grid: Box,
    height: int,
    split_dims: Optional[Sequence[int]] = None,
) -> List[Box]:
    """Recursively halve ``grid`` (cycling dimensions) to depth ``height``.

    Returns the leaves in traversal order — the order that keeps
    consecutive leaves spatially adjacent.  Boxes that cannot be split in
    any allowed dimension stop early, so grids smaller than ``2^h`` cells
    yield fewer than ``2^h`` leaves.

    Args:
        split_dims: dimensions the tree may cut (default: all).  Leave
            the unbounded time dimension out for spatio-temporal arrays
            so monotone growth spreads over every leaf.
    """
    dims = (
        tuple(range(grid.ndim)) if split_dims is None
        else tuple(sorted({int(d) for d in split_dims}))
    )
    leaves: List[Box] = []

    def rec(box: Box, depth: int) -> None:
        if depth == height:
            leaves.append(box)
            return
        for offset in range(len(dims)):
            dim = dims[(depth + offset) % len(dims)]
            if box.hi[dim] - box.lo[dim] >= 2:
                lower, upper = box.halve(dim)
                rec(lower, depth + 1)
                rec(upper, depth + 1)
                return
        leaves.append(box)  # unsplittable: becomes a leaf above max depth

    rec(grid, 0)
    return leaves


class UniformRangePartitioner(ElasticPartitioner):
    """Balanced-tree leaves dealt to hosts in contiguous traversal blocks.

    Args:
        nodes: initial node ids.
        grid: chunk-grid box to subdivide.
        height: tree height ``h``; the leaf count ``l = 2^h`` should be
            much greater than the anticipated cluster size (paper §4.2).
            Higher ``h`` gives better balance at a linearly higher
            reorganization cost (see ``bench_ablation_tree_height``).
        split_dims: dimensions the tree may cut (default: all); pass the
            spatial dimensions only for spatio-temporal arrays.
    """

    name = "uniform_range"
    traits: PartitionerTraits = PAPER_TAXONOMY["uniform_range"]

    def __init__(
        self,
        nodes: Sequence[NodeId],
        grid: Box,
        height: int = DEFAULT_HEIGHT,
        split_dims: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(nodes)
        if height < 1:
            raise PartitioningError(f"height must be >= 1, got {height}")
        self.grid = grid
        self.height = int(height)
        self.split_dims = (
            tuple(range(grid.ndim)) if split_dims is None
            else tuple(sorted({int(d) for d in split_dims}))
        )
        if any(not 0 <= d < grid.ndim for d in self.split_dims):
            raise PartitioningError(
                f"split_dims {split_dims} invalid for {grid.ndim}-d grid"
            )
        self._leaves = build_leaves(grid, self.height, self.split_dims)
        if len(self._leaves) < len(nodes):
            raise PartitioningError(
                f"grid yields only {len(self._leaves)} leaves for "
                f"{len(nodes)} nodes; increase height or grid size"
            )
        self._leaf_owner: List[NodeId] = self._deal(len(self._nodes))
        self._count_cache: Dict[Tuple[Box, int], int] = {}

    # ------------------------------------------------------------------
    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def leaves(self) -> List[Box]:
        return list(self._leaves)

    def leaf_owners(self) -> List[NodeId]:
        return list(self._leaf_owner)

    def _deal(self, n: int) -> List[NodeId]:
        """Assign leaf ``i`` to the host owning block ``i * n // l``."""
        l = len(self._leaves)
        return [self._nodes[min(i * n // l, n - 1)] for i in range(l)]

    def _clamp(self, key: Sequence[int]) -> Tuple[int, ...]:
        return tuple(
            min(max(int(k), lo), hi - 1)
            for k, lo, hi in zip(key, self.grid.lo, self.grid.hi)
        )

    def leaf_index_of(self, key: Sequence[int]) -> int:
        """Index (in traversal order) of the leaf containing ``key``.

        Descends the same recursive bisection used by :func:`build_leaves`,
        so lookup is O(height), not O(l).
        """
        clamped = self._clamp(key)
        box = self.grid
        index_lo, index_hi = 0, len(self._leaves)
        depth = 0
        while index_hi - index_lo > 1:
            split = self._split_of(box, depth)
            if split is None:
                break
            dim, lower, upper = split
            # Leaves under each half are contiguous in traversal order and
            # proportional to each half's leaf population; recompute by
            # descending with explicit counts.
            lower_count = self._count_leaves(lower, depth + 1)
            if clamped[dim] < lower.hi[dim]:
                box = lower
                index_hi = index_lo + lower_count
            else:
                box = upper
                index_lo = index_lo + lower_count
            depth += 1
        return index_lo

    def _split_of(
        self, box: Box, depth: int
    ) -> Optional[Tuple[int, Box, Box]]:
        if depth == self.height:
            return None
        dims = self.split_dims
        for offset in range(len(dims)):
            dim = dims[(depth + offset) % len(dims)]
            if box.hi[dim] - box.lo[dim] >= 2:
                lower, upper = box.halve(dim)
                return dim, lower, upper
        return None

    def _count_leaves(self, box: Box, depth: int) -> int:
        cached = self._count_cache.get((box, depth))
        if cached is not None:
            return cached
        split = self._split_of(box, depth)
        if split is None:
            count = 1
        else:
            _, lower, upper = split
            count = (
                self._count_leaves(lower, depth + 1)
                + self._count_leaves(upper, depth + 1)
            )
        self._count_cache[(box, depth)] = count
        return count

    # ------------------------------------------------------------------
    def _place_new(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        return self._leaf_owner[self.leaf_index_of(ref.key)]

    def _extend(self, new_nodes: Sequence[NodeId]) -> List[Move]:
        # Global re-slice: iterate over all tree leaves and update each
        # leaf's destination under the new l/n blocks (linear in l).
        self._leaf_owner = self._deal(len(self._nodes))
        moves: List[Move] = []
        for ref in sorted(
            self._assignment, key=lambda r: (r.array, r.key)
        ):
            dest = self._leaf_owner[self.leaf_index_of(ref.key)]
            if dest != self._assignment[ref]:
                moves.append(self._relocate(ref, dest))
        return moves
