"""Elastic partitioner framework.

A partitioner owns the *partitioning table* of a growing array database: it
decides which node receives each newly inserted chunk (:meth:`place`) and,
when the cluster scales out, which chunks move where
(:meth:`scale_out` → :class:`RebalancePlan`).

The base class keeps the authoritative bookkeeping — chunk→node assignment,
chunk sizes, per-node byte loads — so that every concrete algorithm only
implements two decisions:

* ``_locate(ref)``: the node the current partitioning table maps a chunk to.
* ``_extend(new_nodes)``: update the table for newly added nodes and return
  the moves it implies.

The base class *enforces* the incremental-scale-out contract: a partitioner
whose traits claim incrementality may only produce moves whose destinations
are newly added nodes (paper §4.1).

Batch placement contract
------------------------
:meth:`ElasticPartitioner.place_batch` routes a whole insert batch through
the partitioner in one call.  Its semantics are defined by equivalence to
calling :meth:`place` sequentially in batch order — including duplicate
refs within one batch, which merge into their first placement:

* the chunk→node assignment, the returned per-ref nodes, and every
  per-chunk size are **bit-identical** to the sequential outcome;
* per-node loads and the running byte total contain the same bytes but
  may differ in the last float ulps, because the batch path is free to
  accumulate them in a different order (vectorized reductions);
* when a batch fails validation mid-way, an override may have applied a
  different prefix than the scalar loop — the ledger stays internally
  consistent, but the exact partial state is unspecified.

The base implementation *is* the sequential loop (and therefore exactly
identical); subclasses override it with vectorized or amortized
equivalents (``tests/test_batch_parity.py`` checks the equivalence for
every registered scheme).

Ledger invariants
-----------------
The bookkeeping lives in a pluggable chunk ledger
(:mod:`repro.core.ledger`): by default the array-backed ledger that
interns refs to dense integer ids and keeps bytes/owner/coordinates in
parallel numpy columns, with the PR-1 dict ledger selectable as parity
oracle — set ``REPRO_LEDGER=dict`` or wrap construction in
:func:`repro.core.ledger.ledger_mode`; registered schemes do not
forward the base ``ledger=`` keyword, which exists for direct
subclass/test construction.
Whatever the backing store, it is redundant by design and must stay
consistent at every public-method boundary:

* ``sum(sizes) == total_bytes`` — the running counter updated by
  :meth:`place` / :meth:`update_size` / :meth:`remove` (relocations move
  bytes between nodes but never change the total).
* ``sum(loads) == total_bytes`` and ``loads[n] == sum of sizes of chunks
  assigned to n``.
* every assigned chunk's node is in ``nodes``.

Subclasses read the ledger through the mapping attributes
``_assignment`` / ``_sizes`` / ``_loads`` (read-only views) or, on bulk
paths, through :meth:`sizes_of` / :meth:`key_column` which gather whole
numpy columns at once — the storage-median rebalance heuristics use
those instead of one dict probe per chunk.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.chunk import ChunkRef
from repro.core.ledger import make_ledger
from repro.core.traits import PartitionerTraits
from repro.errors import PartitioningError

NodeId = int


@dataclass(frozen=True)
class Move:
    """One chunk relocation in a rebalance plan."""

    ref: ChunkRef
    source: NodeId
    dest: NodeId
    size_bytes: float

    def __post_init__(self) -> None:
        if self.source == self.dest:
            raise PartitioningError(
                f"degenerate move of {self.ref}: {self.source} -> {self.dest}"
            )


@dataclass
class RebalancePlan:
    """The set of chunk moves triggered by one scale-out operation."""

    moves: List[Move]

    @property
    def total_bytes(self) -> float:
        """Total bytes shipped over the network by this plan."""
        return float(sum(m.size_bytes for m in self.moves))

    @property
    def chunk_count(self) -> int:
        return len(self.moves)

    def bytes_by_source(self) -> Dict[NodeId, float]:
        """Outbound bytes per source node."""
        out: Dict[NodeId, float] = {}
        for m in self.moves:
            out[m.source] = out.get(m.source, 0.0) + m.size_bytes
        return out

    def bytes_by_dest(self) -> Dict[NodeId, float]:
        """Inbound bytes per destination node."""
        out: Dict[NodeId, float] = {}
        for m in self.moves:
            out[m.dest] = out.get(m.dest, 0.0) + m.size_bytes
        return out

    def touched_nodes(self) -> Tuple[NodeId, ...]:
        """All nodes that send or receive data under this plan."""
        nodes = set()
        for m in self.moves:
            nodes.add(m.source)
            nodes.add(m.dest)
        return tuple(sorted(nodes))

    def is_empty(self) -> bool:
        return not self.moves


class ElasticPartitioner(ABC):
    """Base class for all elastic array partitioners.

    Args:
        nodes: initial node ids (at least one).

    Subclasses must set the class attributes :attr:`name` (registry key)
    and :attr:`traits` (their Table-1 row).
    """

    #: Registry key, e.g. ``"kd_tree"``.
    name: str = ""
    #: The scheme's Table-1 feature row.
    traits: PartitionerTraits

    def __init__(
        self,
        nodes: Sequence[NodeId],
        *,
        ledger: Optional[str] = None,
    ) -> None:
        if not nodes:
            raise PartitioningError("partitioner needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise PartitioningError(f"duplicate node ids in {list(nodes)}")
        self._nodes: List[NodeId] = [int(n) for n in nodes]
        # All chunk bookkeeping (assignment, sizes, per-node loads, the
        # running byte total) lives in the ledger; ``ledger`` picks the
        # backing store ("array" default, "dict" parity oracle).
        self._ledger = make_ledger(ledger, self._nodes)

    # ------------------------------------------------------------------
    # ledger views (read-only; subclasses must mutate through the
    # ledger primitives below, never through these mappings)
    # ------------------------------------------------------------------
    @property
    def _assignment(self) -> Mapping:
        return self._ledger.assignment_view()

    @property
    def _sizes(self) -> Mapping:
        return self._ledger.sizes_view()

    @property
    def _loads(self) -> Mapping:
        return self._ledger.loads_view()

    # ------------------------------------------------------------------
    # read-only state
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """Current node ids, in addition order."""
        return tuple(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def chunk_count(self) -> int:
        return self._ledger.chunk_count

    @property
    def total_bytes(self) -> float:
        """All chunk bytes in the ledger (O(1) running counter)."""
        return self._ledger.total_bytes

    def node_loads(self) -> Dict[NodeId, float]:
        """Bytes currently assigned to each node."""
        return self._ledger.node_loads()

    def load_of(self, node: NodeId) -> float:
        try:
            return self._ledger.load_of(node)
        except KeyError:
            raise PartitioningError(f"unknown node {node}") from None

    def assignment(self) -> Dict[ChunkRef, NodeId]:
        """A copy of the full chunk→node map."""
        return self._ledger.assignment()

    def chunks_on(self, node: NodeId) -> List[ChunkRef]:
        """Chunk refs assigned to one node (sorted for determinism)."""
        if not self._ledger.has_node(node):
            raise PartitioningError(f"unknown node {node}")
        return sorted(
            self._ledger.refs_on(node), key=lambda r: (r.array, r.key)
        )

    def size_of(self, ref: ChunkRef) -> float:
        try:
            return self._ledger.size_of(ref)
        except KeyError:
            raise PartitioningError(f"unknown chunk {ref}") from None

    def sizes_of(self, refs: Sequence[ChunkRef]) -> np.ndarray:
        """Bulk byte sizes of many placed refs (one column gather).

        The vectorized counterpart of :meth:`size_of` — rebalance
        heuristics (storage medians, split deltas) read whole byte
        columns through this instead of probing the ledger per chunk.
        """
        try:
            return self._ledger.sizes_of(refs)
        except KeyError:
            raise PartitioningError(
                "sizes_of includes a chunk that was never placed"
            ) from None

    def key_column(
        self, refs: Sequence[ChunkRef], dim: int
    ) -> np.ndarray:
        """Bulk chunk-key coordinates of placed refs along one dimension."""
        try:
            return self._ledger.key_column(refs, dim)
        except KeyError:
            raise PartitioningError(
                "key_column includes a chunk that was never placed"
            ) from None

    def locate(self, ref: ChunkRef) -> NodeId:
        """Node currently holding ``ref`` (must have been placed)."""
        try:
            return self._ledger.node_of(ref)
        except KeyError:
            raise PartitioningError(f"chunk {ref} was never placed") from None

    def heaviest_node(
        self, among: Optional[Iterable[NodeId]] = None
    ) -> NodeId:
        """The node with the most bytes (ties broken by node id)."""
        candidates = list(among) if among is not None else self._nodes
        if not candidates:
            raise PartitioningError("no candidate nodes")
        return min(candidates, key=lambda n: (-self._loads.get(n, 0.0), n))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def prepare_batch(
        self, batch: Sequence[Tuple[ChunkRef, float]]
    ) -> None:
        """Observe a whole insert batch before its chunks are placed.

        The coordinator receives inserts in bulk (paper §3.4), so a
        partitioner may inspect the batch to refine its table *before*
        any chunk lands — the Hilbert partitioner uses the first batch to
        set data-aware initial ranges.  Must not move existing chunks.
        The default is a no-op.
        """

    def place(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        """Assign a chunk to a node and record its bytes.

        Placing an already-known chunk models a merge into an existing
        physical chunk: the bytes are added on its current node and no
        relocation happens (SciDB's no-overwrite store appends, it never
        rewrites).

        Returns:
            The node id that received the chunk.
        """
        if size_bytes < 0:
            raise PartitioningError(
                f"negative chunk size {size_bytes} for {ref}"
            )
        existing = self._ledger.get_node(ref)
        if existing is not None:
            self._merge_existing(ref, float(size_bytes), existing)
            return existing
        node = self._place_new(ref, float(size_bytes))
        self._commit_new(ref, float(size_bytes), node)
        return node

    def place_batch(
        self, refs_and_sizes: Sequence[Tuple[ChunkRef, float]]
    ) -> Dict[ChunkRef, NodeId]:
        """Place a whole insert batch; return each chunk's node.

        Semantically equivalent to calling :meth:`place` once per item in
        batch order (see the module docstring's batch contract): known
        refs merge bytes onto their current node, duplicate refs within
        the batch merge into their first placement, and the returned
        mapping holds the final node of every distinct ref.

        This default is the correct sequential loop; subclasses override
        it with vectorized (numpy) or amortized equivalents — the
        override must preserve the equivalence bit for bit.
        """
        placements: Dict[ChunkRef, NodeId] = {}
        for ref, size_bytes in refs_and_sizes:
            placements[ref] = self.place(ref, size_bytes)
        return placements

    def adopt_batch(
        self,
        entries: Sequence[Tuple[ChunkRef, float, NodeId]],
    ) -> None:
        """Re-register recorded placements verbatim (restart recovery).

        The out-of-core tier persists each chunk's payload *and* its
        owning node; rebooting a cluster from segment directories must
        restore exactly those placements — :meth:`place_batch` would
        choose fresh nodes and disagree with where the bytes physically
        live.  Adoption commits the recorded ``(ref, size, node)``
        triples straight to the ledger, then lets the scheme rebuild
        what private state it can via :meth:`_adopt_batch`.

        Only valid on an empty partitioner whose node set covers every
        recorded node.  Schemes whose placement depends on unrecoverable
        side state (arrival order, hash-bucket history) accept adopted
        chunks for lookup/remove/query purposes but may place *future*
        chunks differently than the original process would have — the
        recovered cluster is consistent, not history-identical.
        """
        if self.chunk_count:
            raise PartitioningError(
                f"{self.name} already tracks {self.chunk_count} chunks; "
                "adoption requires an empty partitioner"
            )
        first_sizes: Dict[ChunkRef, float] = {}
        commit_nodes: List[NodeId] = []
        has_node = self._ledger.has_node
        for ref, size_bytes, node in entries:
            if size_bytes < 0:
                raise PartitioningError(
                    f"negative chunk size {size_bytes} for {ref}"
                )
            if not has_node(node):
                raise PartitioningError(
                    f"recovered chunk {ref} belongs to unknown "
                    f"node {node}"
                )
            if ref in first_sizes:
                raise PartitioningError(
                    f"duplicate chunk {ref} in adoption batch"
                )
            first_sizes[ref] = float(size_bytes)
            commit_nodes.append(node)
        self._ledger.commit_batch(first_sizes, commit_nodes, [])
        self._adopt_batch(entries)

    def _adopt_batch(
        self,
        entries: Sequence[Tuple[ChunkRef, float, NodeId]],
    ) -> None:
        """Subclass hook: rebuild scheme-private state after adoption.

        Called after the base ledger holds every adopted chunk.  The
        default is a no-op — correct for schemes whose placement is a
        pure function of the ledger; schemes with side tables override
        it to rebuild what the recorded placements imply.
        """

    def remove(self, ref: ChunkRef) -> NodeId:
        """Drop a chunk from the ledger (deletion / expiry).

        Returns:
            The node that held the chunk.

        Raises:
            PartitioningError: when the chunk was never placed.
        """
        if not self._ledger.contains(ref):
            raise PartitioningError(f"chunk {ref} was never placed")
        node, size = self._ledger.remove(ref)
        self._forget(ref, size, node)
        return node

    def scale_out(self, new_nodes: Sequence[NodeId]) -> RebalancePlan:
        """Add nodes and compute the rebalance the partitioning table needs.

        The returned plan has already been applied to the partitioner's
        bookkeeping; the cluster layer is responsible for executing the
        physical transfers.

        Raises:
            PartitioningError: on duplicate node ids, or when an
                incremental partitioner emits a move to a preexisting node
                (contract violation — indicates an implementation bug).
        """
        new_nodes = [int(n) for n in new_nodes]
        if not new_nodes:
            return RebalancePlan(moves=[])
        for n in new_nodes:
            if self._ledger.has_node(n):
                raise PartitioningError(f"node {n} already in cluster")
        if len(set(new_nodes)) != len(new_nodes):
            raise PartitioningError(f"duplicate new node ids {new_nodes}")

        for n in new_nodes:
            self._nodes.append(n)
            self._ledger.add_node(n)

        moves = self._extend(new_nodes)

        # Moves were applied by _relocate as they were emitted (sequential
        # splits within one scale-out must see each other's effects); here
        # we only verify the incremental contract.
        new_set = set(new_nodes)
        if self.traits.incremental_scale_out:
            for move in moves:
                if move.dest not in new_set:
                    raise PartitioningError(
                        f"{self.name} claims incremental scale-out but "
                        f"moved {move.ref} to preexisting node {move.dest}"
                    )

        return RebalancePlan(moves=list(moves))

    def update_size(self, ref: ChunkRef, delta_bytes: float) -> None:
        """Grow (or shrink) the recorded bytes of an existing chunk."""
        current = self.size_of(ref)  # raises if never placed
        if current + delta_bytes < 0:
            raise PartitioningError(
                f"chunk {ref} size would become negative"
            )
        self._ledger.update_size(ref, delta_bytes)

    def compact_ledger(self, min_dead_fraction: float = 0.0) -> bool:
        """Reclaim dead ledger slots left by removed chunks.

        Forwards to the backing ledger's ``compact``: the array ledger
        re-interns live refs and shrinks its columns when at least
        ``min_dead_fraction`` of the allocated slots are dead; the dict
        ledger never fragments and returns ``False``.  Observable
        partitioner state is unchanged either way.  The cluster calls
        this from its reorganization cycle (see
        :meth:`repro.cluster.cluster.ElasticCluster.scale_out`).

        Returns:
            Whether a compaction actually ran.
        """
        return self._ledger.compact(min_dead_fraction)

    @property
    def ledger_dead_fraction(self) -> float:
        """Fraction of allocated ledger slots not holding a live chunk."""
        return self._ledger.dead_slot_fraction

    @property
    def ledger_column_capacity(self) -> int:
        """Allocated per-chunk ledger slots (live + dead + headroom).

        The memory-telemetry twin of :attr:`ledger_dead_fraction` —
        churn harnesses track it to prove compaction bounds index
        memory, without reaching into the ledger internals.
        """
        return self._ledger.column_capacity

    # ------------------------------------------------------------------
    # subclass responsibilities
    # ------------------------------------------------------------------
    @abstractmethod
    def _place_new(self, ref: ChunkRef, size_bytes: float) -> NodeId:
        """Choose the node for a chunk seen for the first time."""

    @abstractmethod
    def _extend(self, new_nodes: Sequence[NodeId]) -> List[Move]:
        """Update the partitioning table for ``new_nodes``; return moves.

        Called after the base class has registered the new nodes (so
        ``self._nodes``/``self._loads`` already include them).  Emit each
        move through :meth:`_relocate` so the ledger stays current while
        the extension runs — sequential splits within one scale-out must
        observe the loads left by earlier splits.
        """

    # ------------------------------------------------------------------
    # ledger primitives (shared by place and the place_batch overrides)
    # ------------------------------------------------------------------
    def _merge_existing(
        self, ref: ChunkRef, size_bytes: float, node: NodeId
    ) -> NodeId:
        """Add bytes to an already-placed chunk on its current node."""
        self._ledger.merge(ref, size_bytes)
        return node

    def _commit_new(
        self, ref: ChunkRef, size_bytes: float, node: NodeId
    ) -> NodeId:
        """Record a first-time placement decided by the subclass."""
        if not self._ledger.has_node(node):
            raise PartitioningError(
                f"{self.name} placed {ref} on unknown node {node}"
            )
        self._ledger.commit_new(ref, size_bytes, node)
        return node

    def _forget(
        self, ref: ChunkRef, size_bytes: float, node: NodeId
    ) -> None:
        """Subclass hook: drop scheme-private per-chunk state on remove.

        Called after the base ledger already dropped ``ref``.  The default
        is a no-op; schemes with side tables (hash-bucket membership,
        arrival ordinals, index caches) override it.
        """

    def _partition_batch(
        self, items: Sequence[Tuple[ChunkRef, float]]
    ) -> Tuple[Dict[ChunkRef, float], List[Tuple[ChunkRef, float]]]:
        """Split a batch into first-time placements and merges.

        The first half of every ``place_batch`` override.  Returns
        ``(first_sizes, merges)``: the first occurrence of each unknown
        ref (in batch order) with its size, and, in batch order, every
        item that merges onto an existing chunk (already assigned, or a
        duplicate of an earlier batch item).  The subclass resolves the
        owners of ``first_sizes``'s refs in bulk, then hands both parts
        to :meth:`_commit_batch`.  Does not touch the ledger.  The loop
        is deliberately lean — two ref-dict operations per item — since
        refs hash through Python-level ``__hash__``.
        """
        contains = self._ledger.contains
        first_sizes: Dict[ChunkRef, float] = {}
        merges: List[Tuple[ChunkRef, float]] = []
        append = merges.append
        setdefault = first_sizes.setdefault
        count = 0
        if self._ledger.chunk_count:
            for ref, size_bytes in items:
                if size_bytes < 0:
                    raise PartitioningError(
                        f"negative chunk size {size_bytes} for {ref}"
                    )
                if contains(ref):
                    append((ref, size_bytes))
                    continue
                setdefault(ref, float(size_bytes))
                if len(first_sizes) == count:  # batch-internal duplicate
                    append((ref, size_bytes))
                else:
                    count += 1
        else:
            # Empty ledger (first ingest): every ref is unknown, skip
            # the per-item assignment probe.
            for ref, size_bytes in items:
                if size_bytes < 0:
                    raise PartitioningError(
                        f"negative chunk size {size_bytes} for {ref}"
                    )
                setdefault(ref, float(size_bytes))
                if len(first_sizes) == count:  # batch-internal duplicate
                    append((ref, size_bytes))
                else:
                    count += 1
        return first_sizes, merges

    def _commit_batch(
        self,
        first_sizes: Dict[ChunkRef, float],
        commit_nodes: Sequence[NodeId],
        merges: Sequence[Tuple[ChunkRef, float]],
    ) -> Dict[ChunkRef, NodeId]:
        """Apply a partitioned batch to the ledger.

        ``commit_nodes`` holds the chosen node of each ``first_sizes``
        ref, in iteration order.  The ledger applies first-time
        placements as bulk column writes (or C-level dict updates on
        the dict oracle); merges replay in batch order.  Assignments,
        returned placements, and per-chunk sizes come out bit-identical
        to sequential :meth:`place`; per-node loads and the running
        total accumulate the same bytes in a different order (see the
        module docstring's batch contract).
        """
        if first_sizes:
            has_node = self._ledger.has_node
            for node in set(commit_nodes):
                if not has_node(node):
                    raise PartitioningError(
                        f"{self.name} placed a chunk on unknown "
                        f"node {node}"
                    )
        return self._ledger.commit_batch(
            first_sizes, commit_nodes, merges
        )

    def _relocate(self, ref: ChunkRef, dest: NodeId) -> Move:
        """Move a chunk to ``dest`` in the ledger and return the move."""
        if not self._ledger.has_node(dest):
            raise PartitioningError(f"relocation to unknown node {dest}")
        source = self._ledger.node_of(ref)
        size = self._ledger.size_of(ref)
        move = Move(ref=ref, source=source, dest=dest, size_bytes=size)
        self._ledger.relocate(ref, dest)
        return move

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(nodes={len(self._nodes)}, "
            f"chunks={self.chunk_count}, "
            f"bytes={self.total_bytes:.3g})"
        )
