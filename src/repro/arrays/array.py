"""Local (single-process) arrays: a chunk map plus cell-level operations.

:class:`LocalArray` is the in-memory materialization of one array — the
coordinator uses it to chunk incoming cells, and the query engine uses the
same interface on each simulated node's slice of the data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.chunk import ChunkData, ChunkKey
from repro.arrays.coords import Box, pack_rows, row_packing
from repro.arrays.schema import ArraySchema
from repro.errors import ChunkError


class LocalArray:
    """An array held in one process: ``chunk key -> ChunkData``.

    Args:
        schema: the array's schema.
        chunks: optional initial chunks.
    """

    def __init__(
        self,
        schema: ArraySchema,
        chunks: Optional[Iterable[ChunkData]] = None,
    ) -> None:
        self.schema = schema
        self._chunks: Dict[ChunkKey, ChunkData] = {}
        for chunk in chunks or ():
            self.add_chunk(chunk)

    # ------------------------------------------------------------------
    # chunk-level interface
    # ------------------------------------------------------------------
    def add_chunk(self, chunk: ChunkData) -> None:
        """Insert a chunk, merging with an existing chunk at the same key."""
        if chunk.schema.name != self.schema.name:
            raise ChunkError(
                f"chunk of array {chunk.schema.name!r} added to "
                f"{self.schema.name!r}"
            )
        existing = self._chunks.get(chunk.key)
        if existing is None:
            self._chunks[chunk.key] = chunk
        else:
            self._chunks[chunk.key] = existing.merged_with(chunk)

    def chunk(self, key: Sequence[int]) -> ChunkData:
        """Fetch one chunk; raises :class:`ChunkError` when absent."""
        k = tuple(int(c) for c in key)
        try:
            return self._chunks[k]
        except KeyError:
            raise ChunkError(
                f"array {self.schema.name} has no chunk {k}"
            ) from None

    def has_chunk(self, key: Sequence[int]) -> bool:
        return tuple(int(c) for c in key) in self._chunks

    def chunk_keys(self) -> List[ChunkKey]:
        """All materialized chunk keys (sorted for determinism)."""
        return sorted(self._chunks)

    def chunks(self) -> Iterator[ChunkData]:
        """Iterate chunks in key order."""
        for key in self.chunk_keys():
            yield self._chunks[key]

    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, tuple) and key in self._chunks

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Total non-empty cells across all chunks."""
        return sum(c.cell_count for c in self._chunks.values())

    @property
    def size_bytes(self) -> float:
        """Total modeled bytes across all chunks."""
        return float(sum(c.size_bytes for c in self._chunks.values()))

    # ------------------------------------------------------------------
    # cell-level ingest
    # ------------------------------------------------------------------
    def insert_cells(
        self,
        coords: np.ndarray,
        attributes: Mapping[str, np.ndarray],
        inflate: float = 1.0,
    ) -> List[ChunkData]:
        """Chunk a batch of cells and add them to the array.

        Args:
            coords: ``(cells, ndim)`` int coordinates.
            attributes: one value column per schema attribute.
            inflate: multiplier applied to the actual numpy footprint to
                obtain the modeled ``size_bytes`` of each produced chunk.

        Returns:
            The list of newly produced (pre-merge) chunks, one per distinct
            chunk key in the batch, in key order.
        """
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.schema.ndim:
            raise ChunkError(
                f"coords must have shape (cells, {self.schema.ndim}), "
                f"got {coords.shape}"
            )
        if coords.shape[0] == 0:
            return []

        produced = chunk_cells(self.schema, coords, attributes, inflate)
        for chunk in produced:
            self.add_chunk(chunk)
        return produced

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def scan(
        self, attrs: Optional[Sequence[str]] = None
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Materialize all cells as ``(coords, {attr: values})``."""
        names = list(attrs) if attrs is not None else list(
            self.schema.attribute_names
        )
        keys = self.chunk_keys()
        if not keys:
            empty = np.empty((0, self.schema.ndim), dtype=np.int64)
            return empty, {
                n: np.empty(0, dtype=self.schema.attribute(n).dtype
                            if self.schema.attribute(n).dtype != "object"
                            else object)
                for n in names
            }
        coords = np.concatenate(
            [self._chunks[k].coords for k in keys], axis=0
        )
        values = {
            n: np.concatenate([self._chunks[k].values(n) for k in keys])
            for n in names
        }
        return coords, values

    def chunks_in_region(self, region: Box) -> List[ChunkData]:
        """Chunks whose cell boxes intersect a region of *cell* space."""
        out = []
        for key in self.chunk_keys():
            if self.schema.chunk_box(key).intersects(region):
                out.append(self._chunks[key])
        return out

    def subarray(
        self, region: Box, attrs: Optional[Sequence[str]] = None
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Cells falling inside a half-open region of cell space."""
        names = list(attrs) if attrs is not None else list(
            self.schema.attribute_names
        )
        picked_coords = []
        picked_values: Dict[str, List[np.ndarray]] = {n: [] for n in names}
        for chunk in self.chunks_in_region(region):
            mask = np.ones(chunk.cell_count, dtype=bool)
            for d in range(self.schema.ndim):
                mask &= (chunk.coords[:, d] >= region.lo[d])
                mask &= (chunk.coords[:, d] < region.hi[d])
            if not mask.any():
                continue
            picked_coords.append(chunk.coords[mask])
            for n in names:
                picked_values[n].append(chunk.values(n)[mask])
        if not picked_coords:
            empty = np.empty((0, self.schema.ndim), dtype=np.int64)
            return empty, {
                n: np.empty(0, dtype=self.schema.attribute(n).dtype
                            if self.schema.attribute(n).dtype != "object"
                            else object)
                for n in names
            }
        coords = np.concatenate(picked_coords, axis=0)
        values = {n: np.concatenate(picked_values[n]) for n in names}
        return coords, values


def _validated_keys(
    schema: ArraySchema,
    coords: np.ndarray,
    attributes: Mapping[str, np.ndarray],
) -> np.ndarray:
    """Bounds-check a cell batch and return its per-cell chunk keys.

    Shared front half of :func:`chunk_cells` and
    :func:`chunk_cells_scalar`: validates attribute columns, rejects
    cells outside the schema's declared bounds, and computes every
    cell's chunk-grid key as ``(cell - start) // interval`` per
    dimension in one vector pass.

    Parameters
    ----------
    schema : ArraySchema
        The target array's schema.
    coords : numpy.ndarray of int64, shape (cells, ndim)
        Cell coordinates.
    attributes : mapping of str to numpy.ndarray
        One value column per schema attribute.

    Returns
    -------
    numpy.ndarray of int64, shape (cells, ndim)
        Chunk-grid key of every cell.

    Raises
    ------
    ChunkError
        On a missing/short attribute column or out-of-bounds cells.
    """
    n_cells = coords.shape[0]
    for name in schema.attribute_names:
        if name not in attributes:
            raise ChunkError(f"batch missing attribute {name!r}")
        if np.asarray(attributes[name]).shape != (n_cells,):
            raise ChunkError(
                f"attribute {name!r} length != cell count {n_cells}"
            )

    starts = np.asarray([d.start for d in schema.dimensions], dtype=np.int64)
    intervals = np.asarray(
        [d.chunk_interval for d in schema.dimensions], dtype=np.int64
    )
    highs = np.asarray(
        [d.end if d.end is not None else np.iinfo(np.int64).max
         for d in schema.dimensions],
        dtype=np.int64,
    )
    if np.any(coords < starts) or np.any(coords > highs):
        raise ChunkError(
            f"batch contains cells outside the declared bounds of "
            f"{schema.name}"
        )
    return (coords - starts) // intervals


def _cell_byte_width(
    schema: ArraySchema, columns: Mapping[str, np.ndarray]
) -> int:
    """Physical bytes one cell contributes (coords row + value columns).

    Matches :meth:`ChunkData._actual_nbytes` exactly: 8 bytes per
    coordinate, each column's dtype width, and the declared itemsize for
    object-dtype columns — so group footprints can be priced as one
    multiply instead of a per-chunk recount.
    """
    width = 8 * schema.ndim
    for spec in schema.attributes:
        column = columns[spec.name]
        width += (
            spec.itemsize if column.dtype == object
            else column.dtype.itemsize
        )
    return width


def _build_chunks(
    schema: ArraySchema,
    keys_sorted: np.ndarray,
    coords_sorted: np.ndarray,
    attrs_sorted: Mapping[str, np.ndarray],
    boundaries: np.ndarray,
    inflate: float,
) -> List[ChunkData]:
    """Materialize one :class:`ChunkData` per key-sorted cell group.

    Uses the trusted :meth:`ChunkData.from_validated_cells` path: the
    batch was bounds-checked up front and keys derive from coordinates,
    so per-chunk re-validation and footprint recounts are skipped.
    """
    per_cell = _cell_byte_width(schema, attrs_sorted)
    names = schema.attribute_names
    chunks: List[ChunkData] = []
    for i in range(len(boundaries) - 1):
        lo, hi = int(boundaries[i]), int(boundaries[i + 1])
        key = tuple(int(v) for v in keys_sorted[lo])
        chunk_attrs = {
            name: attrs_sorted[name][lo:hi] for name in names
        }
        chunks.append(
            ChunkData.from_validated_cells(
                schema, key, coords_sorted[lo:hi], chunk_attrs,
                size_bytes=float((hi - lo) * per_cell) * inflate,
            )
        )
    return chunks


def chunk_cells(
    schema: ArraySchema,
    coords: np.ndarray,
    attributes: Mapping[str, np.ndarray],
    inflate: float = 1.0,
) -> List[ChunkData]:
    """Partition a batch of cells into per-chunk :class:`ChunkData` objects.

    This is the coordinator-side chunking step of the ingest path
    (feeding both the MODIS and AIS generators): incoming cells are
    grouped by their chunk key; each group becomes one chunk whose
    modeled size is its numpy footprint times ``inflate``.

    The grouping is a single sort over *packed* chunk keys: each cell's
    key tuple is mixed-radix encoded into one int64 (offset by the
    batch's per-dimension key minima, so the packing is order-preserving
    and overflow-checked), one stable ``argsort`` orders the cells, and
    the group boundaries fall out of one ``diff`` over the sorted key
    column.  When a batch's key extent cannot be packed into int64 the
    grouping falls back to the per-dimension ``lexsort`` (the previous
    implementation's grouping strategy).  A deliberately naive per-cell
    reference implementation, :func:`chunk_cells_scalar`, serves as the
    parity oracle.

    Parameters
    ----------
    schema : ArraySchema
        The target array's schema.
    coords : numpy.ndarray of int64, shape (cells, ndim)
        Cell coordinates.
    attributes : mapping of str to numpy.ndarray
        One value column per schema attribute.
    inflate : float
        Multiplier applied to each chunk's numpy footprint to obtain its
        modeled ``size_bytes`` (paper-scale chunks from laptop-scale
        cell counts).

    Returns
    -------
    list of ChunkData
        One chunk per distinct key, sorted by key; cells within a chunk
        keep their batch order.
    """
    coords = np.asarray(coords, dtype=np.int64)
    keys = _validated_keys(schema, coords, attributes)
    n_cells = coords.shape[0]
    if n_cells == 0:
        return []

    # Pack each key tuple into one int64 (order-preserving mixed radix
    # over the batch's own key extent) so grouping needs a single-column
    # sort instead of an ndim-pass lexsort.
    packing = row_packing(keys)
    if packing is not None:
        packed = pack_rows(keys, *packing)
        order = np.argsort(packed, kind="stable")
        change = np.diff(packed[order]) != 0
    else:  # key extent defeats packing: per-dimension fallback
        order = np.lexsort(
            tuple(keys[:, d] for d in reversed(range(schema.ndim)))
        )
        change = np.any(np.diff(keys[order], axis=0) != 0, axis=1)

    keys_sorted = keys[order]
    coords_sorted = coords[order]
    attrs_sorted = {
        name: np.asarray(attributes[name])[order]
        for name in schema.attribute_names
    }
    boundaries = np.concatenate(
        [[0], np.nonzero(change)[0] + 1, [n_cells]]
    )
    # Groups come out of the order-preserving sort already key-sorted.
    return _build_chunks(
        schema, keys_sorted, coords_sorted, attrs_sorted, boundaries,
        inflate,
    )


def chunk_cells_scalar(
    schema: ArraySchema,
    coords: np.ndarray,
    attributes: Mapping[str, np.ndarray],
    inflate: float = 1.0,
) -> List[ChunkData]:
    """Parity oracle: per-cell Python loop building a dict of cell masks.

    A deliberately naive reference implementation — one dict probe per
    cell, one boolean-mask gather per chunk — that defines the
    semantics without sharing any code with the packed-sort path.
    Output is identical to :func:`chunk_cells` (checked by
    ``tests/test_batch_parity.py``): same chunks in the same key order,
    cells in batch order within each chunk, bit-identical sizes.
    """
    coords = np.asarray(coords, dtype=np.int64)
    keys = _validated_keys(schema, coords, attributes)
    n_cells = coords.shape[0]
    if n_cells == 0:
        return []

    mask_by_key: Dict[Tuple[int, ...], np.ndarray] = {}
    for i in range(n_cells):
        key = tuple(int(v) for v in keys[i])
        mask = mask_by_key.get(key)
        if mask is None:
            mask = np.zeros(n_cells, dtype=bool)
            mask_by_key[key] = mask
        mask[i] = True

    chunks: List[ChunkData] = []
    attr_columns = {
        name: np.asarray(attributes[name])
        for name in schema.attribute_names
    }
    for key in sorted(mask_by_key):
        mask = mask_by_key[key]
        chunk_attrs = {
            name: column[mask] for name, column in attr_columns.items()
        }
        chunk = ChunkData(schema, key, coords[mask], chunk_attrs)
        if inflate != 1.0:
            chunk = ChunkData(
                schema, key, coords[mask], chunk_attrs,
                size_bytes=chunk.size_bytes * inflate,
            )
        chunks.append(chunk)
    return chunks
