"""Local (single-process) arrays: a chunk map plus cell-level operations.

:class:`LocalArray` is the in-memory materialization of one array — the
coordinator uses it to chunk incoming cells, and the query engine uses the
same interface on each simulated node's slice of the data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.chunk import ChunkData, ChunkKey
from repro.arrays.coords import Box
from repro.arrays.schema import ArraySchema
from repro.errors import ChunkError


class LocalArray:
    """An array held in one process: ``chunk key -> ChunkData``.

    Args:
        schema: the array's schema.
        chunks: optional initial chunks.
    """

    def __init__(
        self,
        schema: ArraySchema,
        chunks: Optional[Iterable[ChunkData]] = None,
    ) -> None:
        self.schema = schema
        self._chunks: Dict[ChunkKey, ChunkData] = {}
        for chunk in chunks or ():
            self.add_chunk(chunk)

    # ------------------------------------------------------------------
    # chunk-level interface
    # ------------------------------------------------------------------
    def add_chunk(self, chunk: ChunkData) -> None:
        """Insert a chunk, merging with an existing chunk at the same key."""
        if chunk.schema.name != self.schema.name:
            raise ChunkError(
                f"chunk of array {chunk.schema.name!r} added to "
                f"{self.schema.name!r}"
            )
        existing = self._chunks.get(chunk.key)
        if existing is None:
            self._chunks[chunk.key] = chunk
        else:
            self._chunks[chunk.key] = existing.merged_with(chunk)

    def chunk(self, key: Sequence[int]) -> ChunkData:
        """Fetch one chunk; raises :class:`ChunkError` when absent."""
        k = tuple(int(c) for c in key)
        try:
            return self._chunks[k]
        except KeyError:
            raise ChunkError(
                f"array {self.schema.name} has no chunk {k}"
            ) from None

    def has_chunk(self, key: Sequence[int]) -> bool:
        return tuple(int(c) for c in key) in self._chunks

    def chunk_keys(self) -> List[ChunkKey]:
        """All materialized chunk keys (sorted for determinism)."""
        return sorted(self._chunks)

    def chunks(self) -> Iterator[ChunkData]:
        """Iterate chunks in key order."""
        for key in self.chunk_keys():
            yield self._chunks[key]

    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, tuple) and key in self._chunks

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Total non-empty cells across all chunks."""
        return sum(c.cell_count for c in self._chunks.values())

    @property
    def size_bytes(self) -> float:
        """Total modeled bytes across all chunks."""
        return float(sum(c.size_bytes for c in self._chunks.values()))

    # ------------------------------------------------------------------
    # cell-level ingest
    # ------------------------------------------------------------------
    def insert_cells(
        self,
        coords: np.ndarray,
        attributes: Mapping[str, np.ndarray],
        inflate: float = 1.0,
    ) -> List[ChunkData]:
        """Chunk a batch of cells and add them to the array.

        Args:
            coords: ``(cells, ndim)`` int coordinates.
            attributes: one value column per schema attribute.
            inflate: multiplier applied to the actual numpy footprint to
                obtain the modeled ``size_bytes`` of each produced chunk.

        Returns:
            The list of newly produced (pre-merge) chunks, one per distinct
            chunk key in the batch, in key order.
        """
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.schema.ndim:
            raise ChunkError(
                f"coords must have shape (cells, {self.schema.ndim}), "
                f"got {coords.shape}"
            )
        if coords.shape[0] == 0:
            return []

        produced = chunk_cells(self.schema, coords, attributes, inflate)
        for chunk in produced:
            self.add_chunk(chunk)
        return produced

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def scan(
        self, attrs: Optional[Sequence[str]] = None
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Materialize all cells as ``(coords, {attr: values})``."""
        names = list(attrs) if attrs is not None else list(
            self.schema.attribute_names
        )
        keys = self.chunk_keys()
        if not keys:
            empty = np.empty((0, self.schema.ndim), dtype=np.int64)
            return empty, {
                n: np.empty(0, dtype=self.schema.attribute(n).dtype
                            if self.schema.attribute(n).dtype != "object"
                            else object)
                for n in names
            }
        coords = np.concatenate(
            [self._chunks[k].coords for k in keys], axis=0
        )
        values = {
            n: np.concatenate([self._chunks[k].values(n) for k in keys])
            for n in names
        }
        return coords, values

    def chunks_in_region(self, region: Box) -> List[ChunkData]:
        """Chunks whose cell boxes intersect a region of *cell* space."""
        out = []
        for key in self.chunk_keys():
            if self.schema.chunk_box(key).intersects(region):
                out.append(self._chunks[key])
        return out

    def subarray(
        self, region: Box, attrs: Optional[Sequence[str]] = None
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """Cells falling inside a half-open region of cell space."""
        names = list(attrs) if attrs is not None else list(
            self.schema.attribute_names
        )
        picked_coords = []
        picked_values: Dict[str, List[np.ndarray]] = {n: [] for n in names}
        for chunk in self.chunks_in_region(region):
            mask = np.ones(chunk.cell_count, dtype=bool)
            for d in range(self.schema.ndim):
                mask &= (chunk.coords[:, d] >= region.lo[d])
                mask &= (chunk.coords[:, d] < region.hi[d])
            if not mask.any():
                continue
            picked_coords.append(chunk.coords[mask])
            for n in names:
                picked_values[n].append(chunk.values(n)[mask])
        if not picked_coords:
            empty = np.empty((0, self.schema.ndim), dtype=np.int64)
            return empty, {
                n: np.empty(0, dtype=self.schema.attribute(n).dtype
                            if self.schema.attribute(n).dtype != "object"
                            else object)
                for n in names
            }
        coords = np.concatenate(picked_coords, axis=0)
        values = {n: np.concatenate(picked_values[n]) for n in names}
        return coords, values


def chunk_cells(
    schema: ArraySchema,
    coords: np.ndarray,
    attributes: Mapping[str, np.ndarray],
    inflate: float = 1.0,
) -> List[ChunkData]:
    """Partition a batch of cells into per-chunk :class:`ChunkData` objects.

    This is the coordinator-side chunking step of the ingest path: incoming
    cells are grouped by their chunk key; each group becomes one chunk whose
    modeled size is its numpy footprint times ``inflate``.

    Returns chunks sorted by key.
    """
    coords = np.asarray(coords, dtype=np.int64)
    n_cells = coords.shape[0]
    for name in schema.attribute_names:
        if name not in attributes:
            raise ChunkError(f"batch missing attribute {name!r}")
        if np.asarray(attributes[name]).shape != (n_cells,):
            raise ChunkError(
                f"attribute {name!r} length != cell count {n_cells}"
            )

    # Vectorized chunk-key computation: (cell - start) // interval per dim.
    starts = np.asarray([d.start for d in schema.dimensions], dtype=np.int64)
    intervals = np.asarray(
        [d.chunk_interval for d in schema.dimensions], dtype=np.int64
    )
    lows = np.asarray(
        [d.start for d in schema.dimensions], dtype=np.int64
    )
    highs = np.asarray(
        [d.end if d.end is not None else np.iinfo(np.int64).max
         for d in schema.dimensions],
        dtype=np.int64,
    )
    if np.any(coords < lows) or np.any(coords > highs):
        raise ChunkError(
            f"batch contains cells outside the declared bounds of "
            f"{schema.name}"
        )
    keys = (coords - starts) // intervals

    order = np.lexsort(tuple(keys[:, d] for d in reversed(range(schema.ndim))))
    keys_sorted = keys[order]
    coords_sorted = coords[order]
    attrs_sorted = {
        name: np.asarray(attributes[name])[order]
        for name in schema.attribute_names
    }

    # Group boundaries where any key component changes.
    if n_cells == 0:
        return []
    change = np.any(np.diff(keys_sorted, axis=0) != 0, axis=1)
    boundaries = np.concatenate(
        [[0], np.nonzero(change)[0] + 1, [n_cells]]
    )

    chunks: List[ChunkData] = []
    for i in range(len(boundaries) - 1):
        lo, hi = boundaries[i], boundaries[i + 1]
        key = tuple(int(v) for v in keys_sorted[lo])
        chunk_attrs = {
            name: attrs_sorted[name][lo:hi]
            for name in schema.attribute_names
        }
        chunk = ChunkData(schema, key, coords_sorted[lo:hi], chunk_attrs)
        if inflate != 1.0:
            chunk = ChunkData(
                schema, key, coords_sorted[lo:hi], chunk_attrs,
                size_bytes=chunk.size_bytes * inflate,
            )
        chunks.append(chunk)
    chunks.sort(key=lambda c: c.key)
    return chunks
