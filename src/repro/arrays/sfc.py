"""d-dimensional Hilbert space-filling curve.

The Hilbert Curve partitioner (paper §4.2) serializes an array's chunks so
that chunks adjacent on the curve are close in Euclidean space, then assigns
contiguous curve ranges to nodes.  The paper uses a generalized
pseudo-Hilbert scan for rectangles [Zhang et al. 2006]; we reproduce that
behaviour by embedding the rectangle in the smallest enclosing power-of-two
hypercube, computing exact Hilbert indices there (Skilling's transpose
algorithm [Skilling 2004]), and restricting the traversal to the rectangle.
The restriction preserves the curve's ordering and therefore its locality,
which is the property the partitioner relies on.

All functions operate on non-negative integer coordinates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ChunkError


def _axes_to_transpose(x: List[int], bits: int) -> List[int]:
    """Skilling's AxesToTranspose: in-place Gray-code transform."""
    n = len(x)
    m = 1 << (bits - 1)
    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def _transpose_to_axes(x: List[int], bits: int) -> List[int]:
    """Skilling's TransposeToAxes: inverse of :func:`_axes_to_transpose`."""
    n = len(x)
    top = 2 << (bits - 1)
    # Gray decode by H ^ (H/2).
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != top:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _interleave(transposed: Sequence[int], bits: int) -> int:
    """Pack a transposed Hilbert coordinate into a single integer index.

    Bit ``bits-1`` of axis 0 is the most significant bit of the index,
    followed by bit ``bits-1`` of axis 1, and so on down the bit planes.
    """
    index = 0
    for b in range(bits - 1, -1, -1):
        for axis_value in transposed:
            index = (index << 1) | ((axis_value >> b) & 1)
    return index


def _deinterleave(index: int, bits: int, ndim: int) -> List[int]:
    """Unpack a Hilbert index into its transposed coordinate."""
    x = [0] * ndim
    position = bits * ndim - 1
    for b in range(bits - 1, -1, -1):
        for d in range(ndim):
            x[d] |= ((index >> position) & 1) << b
            position -= 1
    return x


def hilbert_index(point: Sequence[int], bits: int) -> int:
    """Hilbert index of ``point`` on the order-``bits`` curve.

    Args:
        point: non-negative coordinates, each ``< 2**bits``.
        bits: curve order (bits per dimension).

    Returns:
        The position of ``point`` along the curve, in
        ``[0, 2**(bits * ndim))``.
    """
    if bits < 1:
        raise ChunkError(f"curve order must be >= 1, got {bits}")
    x = []
    limit = 1 << bits
    for c in point:
        c = int(c)
        if not 0 <= c < limit:
            raise ChunkError(
                f"coordinate {c} outside [0, {limit}) for order-{bits} curve"
            )
        x.append(c)
    if not x:
        raise ChunkError("point must have at least one dimension")
    if len(x) == 1:
        return x[0]
    transposed = _axes_to_transpose(list(x), bits)
    return _interleave(transposed, bits)


def hilbert_point(index: int, bits: int, ndim: int) -> Tuple[int, ...]:
    """Inverse of :func:`hilbert_index`: the point at curve position."""
    if bits < 1:
        raise ChunkError(f"curve order must be >= 1, got {bits}")
    if ndim < 1:
        raise ChunkError("ndim must be >= 1")
    total = 1 << (bits * ndim)
    if not 0 <= index < total:
        raise ChunkError(
            f"index {index} outside [0, {total}) for order-{bits} "
            f"{ndim}-d curve"
        )
    if ndim == 1:
        return (index,)
    transposed = _deinterleave(index, bits, ndim)
    return tuple(_transpose_to_axes(transposed, bits))


def bits_for_extent(extent: int) -> int:
    """Curve order needed to cover coordinates ``0 .. extent-1``."""
    if extent < 1:
        raise ChunkError(f"extent must be >= 1, got {extent}")
    bits = 1
    while (1 << bits) < extent:
        bits += 1
    return bits


class RectangleHilbert:
    """Pseudo-Hilbert ordering for an arbitrary box of chunk-grid space.

    The paper's Hilbert partitioner operates on rectangles (chunk grids are
    rarely square).  We embed the rectangle in the smallest power-of-two
    hypercube, index points on the exact cube curve, and use the cube index
    directly as the sort key.  Points outside the rectangle simply never
    occur, so the rectangle traversal is the cube traversal with gaps —
    ordering and locality are preserved, which is all the range partitioner
    needs.

    Args:
        extents: per-dimension chunk counts of the grid (all >= 1).
    """

    def __init__(self, extents: Sequence[int]) -> None:
        extents = tuple(int(e) for e in extents)
        if not extents:
            raise ChunkError("rectangle needs at least one dimension")
        for e in extents:
            if e < 1:
                raise ChunkError(f"invalid rectangle extent {e}")
        self.extents = extents
        self.ndim = len(extents)
        self.bits = bits_for_extent(max(extents))

    @property
    def index_space(self) -> int:
        """Size of the enclosing cube's index space, ``2**(bits*ndim)``."""
        return 1 << (self.bits * self.ndim)

    def index(self, point: Sequence[int]) -> int:
        """Curve position of a grid point.

        Points are allowed to exceed the declared extents (unbounded
        dimensions grow over time); when they exceed the current curve
        order, the curve is *not* re-fit — instead the overflow is folded
        beyond the cube, keeping previously issued indices stable, which is
        required for incremental scale-out (ranges already assigned to
        nodes must not be reshuffled by later inserts).
        """
        if len(point) != self.ndim:
            raise ChunkError(
                f"point arity {len(point)} != rectangle arity {self.ndim}"
            )
        limit = 1 << self.bits
        clipped = []
        overflow = 0
        for c in point:
            c = int(c)
            if c < 0:
                raise ChunkError(f"negative grid coordinate {c}")
            if c >= limit:
                # Fold coordinates beyond the cube into an overflow epoch
                # appended after the cube's index space.
                overflow += (c // limit)
                c = c % limit
            clipped.append(c)
        base = hilbert_index(clipped, self.bits)
        return overflow * self.index_space + base
