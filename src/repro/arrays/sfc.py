"""d-dimensional Hilbert space-filling curve.

The Hilbert Curve partitioner (paper §4.2) serializes an array's chunks so
that chunks adjacent on the curve are close in Euclidean space, then assigns
contiguous curve ranges to nodes.  The paper uses a generalized
pseudo-Hilbert scan for rectangles [Zhang et al. 2006]; we reproduce that
behaviour by embedding the rectangle in the smallest enclosing power-of-two
hypercube, computing exact Hilbert indices there (Skilling's transpose
algorithm [Skilling 2004]), and restricting the traversal to the rectangle.
The restriction preserves the curve's ordering and therefore its locality,
which is the property the partitioner relies on.

All functions operate on non-negative integer coordinates.

Batch API contract
------------------
:func:`hilbert_index_batch` and :meth:`RectangleHilbert.index_batch` are
vectorized (numpy bit-plane) implementations of the scalar
:func:`hilbert_index` / :meth:`RectangleHilbert.index` paths.  The scalar
path is the parity oracle: for every valid input the batch result is
**bit-for-bit identical** to mapping the scalar function over the batch
(``tests/test_batch_parity.py`` enforces this property).  When the curve's
index space cannot be represented in int64 (``bits * ndim > 63``, or an
overflow epoch would push past 2**63), the batch path transparently falls
back to the scalar oracle and returns an object-dtype array of Python
ints — results stay exact, only the speed changes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ChunkError


def _axes_to_transpose(x: List[int], bits: int) -> List[int]:
    """Skilling's AxesToTranspose: in-place Gray-code transform."""
    n = len(x)
    m = 1 << (bits - 1)
    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def _transpose_to_axes(x: List[int], bits: int) -> List[int]:
    """Skilling's TransposeToAxes: inverse of :func:`_axes_to_transpose`."""
    n = len(x)
    top = 2 << (bits - 1)
    # Gray decode by H ^ (H/2).
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != top:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _interleave(transposed: Sequence[int], bits: int) -> int:
    """Pack a transposed Hilbert coordinate into a single integer index.

    Bit ``bits-1`` of axis 0 is the most significant bit of the index,
    followed by bit ``bits-1`` of axis 1, and so on down the bit planes.
    """
    index = 0
    for b in range(bits - 1, -1, -1):
        for axis_value in transposed:
            index = (index << 1) | ((axis_value >> b) & 1)
    return index


def _deinterleave(index: int, bits: int, ndim: int) -> List[int]:
    """Unpack a Hilbert index into its transposed coordinate."""
    x = [0] * ndim
    position = bits * ndim - 1
    for b in range(bits - 1, -1, -1):
        for d in range(ndim):
            x[d] |= ((index >> position) & 1) << b
            position -= 1
    return x


def hilbert_index(point: Sequence[int], bits: int) -> int:
    """Hilbert index of ``point`` on the order-``bits`` curve.

    Args:
        point: non-negative coordinates, each ``< 2**bits``.
        bits: curve order (bits per dimension).

    Returns:
        The position of ``point`` along the curve, in
        ``[0, 2**(bits * ndim))``.
    """
    if bits < 1:
        raise ChunkError(f"curve order must be >= 1, got {bits}")
    x = []
    limit = 1 << bits
    for c in point:
        c = int(c)
        if not 0 <= c < limit:
            raise ChunkError(
                f"coordinate {c} outside [0, {limit}) for order-{bits} curve"
            )
        x.append(c)
    if not x:
        raise ChunkError("point must have at least one dimension")
    if len(x) == 1:
        return x[0]
    transposed = _axes_to_transpose(list(x), bits)
    return _interleave(transposed, bits)


def hilbert_index_batch(points: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert indices of many points at once (vectorized Skilling).

    Runs the same Gray-code transform as :func:`hilbert_index`, but on
    whole bit-planes of an ``(n, ndim)`` coordinate array: every pass of
    Skilling's loop becomes a handful of numpy mask/xor operations over
    all ``n`` points simultaneously, so the per-point cost is a few
    vector instructions rather than a Python-level loop.

    Args:
        points: ``(n, ndim)`` array of non-negative integer coordinates,
            each ``< 2**bits``.
        bits: curve order (bits per dimension).

    Returns:
        ``(n,)`` int64 array of curve positions, bit-for-bit equal to
        ``[hilbert_index(p, bits) for p in points]``.  When
        ``bits * ndim > 63`` the indices cannot fit int64; an
        object-dtype array of exact Python ints is returned instead
        (computed via the scalar oracle).
    """
    if bits < 1:
        raise ChunkError(f"curve order must be >= 1, got {bits}")
    pts = np.asarray(points)
    if pts.ndim != 2:
        raise ChunkError(
            f"points must have shape (n, ndim), got {pts.shape}"
        )
    ndim = pts.shape[1]
    if ndim < 1:
        raise ChunkError("point must have at least one dimension")
    if (
        pts.dtype.kind == "u"
        and pts.size
        and int(pts.max()) > np.iinfo(np.int64).max
    ):
        # astype would *wrap* unsigned values >= 2**63 instead of
        # raising; route them to the exact scalar oracle.
        return np.array(
            [hilbert_index(tuple(row), bits) for row in pts.tolist()],
            dtype=object,
        )
    try:
        pts = pts.astype(np.int64, copy=False)
    except (OverflowError, TypeError):
        # Coordinates beyond int64: the scalar oracle validates (and,
        # for curve orders > 63 bits, indexes) arbitrary Python ints.
        return np.array(
            [hilbert_index(tuple(row), bits) for row in pts.tolist()],
            dtype=object,
        )
    limit = 1 << bits
    if pts.size:
        lo = int(pts.min())
        hi = int(pts.max())
        if lo < 0 or hi >= limit:
            bad = lo if lo < 0 else hi
            raise ChunkError(
                f"coordinate {bad} outside [0, {limit}) for "
                f"order-{bits} curve"
            )
    if ndim == 1:
        return pts[:, 0].copy()
    if bits * ndim > 63:
        # Index space exceeds int64: defer to the exact scalar oracle.
        return np.array(
            [hilbert_index(tuple(row), bits) for row in pts.tolist()],
            dtype=object,
        )
    n = pts.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)

    x = pts.astype(np.uint64)  # (n, ndim), one column per axis
    m = 1 << (bits - 1)

    # AxesToTranspose, all points at once: each scalar branch becomes a
    # mask-select over the batch.
    q = m
    while q > 1:
        p = q - 1
        x0 = x[:, 0]
        for i in range(ndim):
            xi = x[:, i]
            high = (xi & q) != 0
            t = (x0 ^ xi) & p
            x0 ^= np.where(high, np.uint64(p), t)
            if i:  # for i == 0 the low branch is a no-op (t == 0)
                xi ^= np.where(high, np.uint64(0), t)
        q >>= 1
    # Gray encode.
    for i in range(1, ndim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = m
    while q > 1:
        high = (x[:, ndim - 1] & q) != 0
        t ^= np.where(high, np.uint64(q - 1), np.uint64(0))
        q >>= 1
    x ^= t[:, None]

    # Interleave the bit planes (axis 0 most significant).
    index = np.zeros(n, dtype=np.uint64)
    one = np.uint64(1)
    for b in range(bits - 1, -1, -1):
        shift = np.uint64(b)
        for d in range(ndim):
            index = (index << one) | ((x[:, d] >> shift) & one)
    return index.astype(np.int64)


def hilbert_point(index: int, bits: int, ndim: int) -> Tuple[int, ...]:
    """Inverse of :func:`hilbert_index`: the point at curve position."""
    if bits < 1:
        raise ChunkError(f"curve order must be >= 1, got {bits}")
    if ndim < 1:
        raise ChunkError("ndim must be >= 1")
    total = 1 << (bits * ndim)
    if not 0 <= index < total:
        raise ChunkError(
            f"index {index} outside [0, {total}) for order-{bits} "
            f"{ndim}-d curve"
        )
    if ndim == 1:
        return (index,)
    transposed = _deinterleave(index, bits, ndim)
    return tuple(_transpose_to_axes(transposed, bits))


def bits_for_extent(extent: int) -> int:
    """Curve order needed to cover coordinates ``0 .. extent-1``."""
    if extent < 1:
        raise ChunkError(f"extent must be >= 1, got {extent}")
    bits = 1
    while (1 << bits) < extent:
        bits += 1
    return bits


class RectangleHilbert:
    """Pseudo-Hilbert ordering for an arbitrary box of chunk-grid space.

    The paper's Hilbert partitioner operates on rectangles (chunk grids are
    rarely square).  We embed the rectangle in the smallest power-of-two
    hypercube, index points on the exact cube curve, and use the cube index
    directly as the sort key.  Points outside the rectangle simply never
    occur, so the rectangle traversal is the cube traversal with gaps —
    ordering and locality are preserved, which is all the range partitioner
    needs.

    Args:
        extents: per-dimension chunk counts of the grid (all >= 1).
    """

    def __init__(self, extents: Sequence[int]) -> None:
        extents = tuple(int(e) for e in extents)
        if not extents:
            raise ChunkError("rectangle needs at least one dimension")
        for e in extents:
            if e < 1:
                raise ChunkError(f"invalid rectangle extent {e}")
        self.extents = extents
        self.ndim = len(extents)
        self.bits = bits_for_extent(max(extents))

    @property
    def index_space(self) -> int:
        """Size of the enclosing cube's index space, ``2**(bits*ndim)``."""
        return 1 << (self.bits * self.ndim)

    def index(self, point: Sequence[int]) -> int:
        """Curve position of a grid point.

        Points are allowed to exceed the declared extents (unbounded
        dimensions grow over time); when they exceed the current curve
        order, the curve is *not* re-fit — instead the overflow is folded
        beyond the cube, keeping previously issued indices stable, which is
        required for incremental scale-out (ranges already assigned to
        nodes must not be reshuffled by later inserts).
        """
        if len(point) != self.ndim:
            raise ChunkError(
                f"point arity {len(point)} != rectangle arity {self.ndim}"
            )
        limit = 1 << self.bits
        clipped = []
        overflow = 0
        for c in point:
            c = int(c)
            if c < 0:
                raise ChunkError(f"negative grid coordinate {c}")
            if c >= limit:
                # Fold coordinates beyond the cube into an overflow epoch
                # appended after the cube's index space.
                overflow += (c // limit)
                c = c % limit
            clipped.append(c)
        base = hilbert_index(clipped, self.bits)
        return overflow * self.index_space + base

    def index_batch(self, points: np.ndarray) -> np.ndarray:
        """Curve positions of many grid points at once.

        Vectorized equivalent of mapping :meth:`index` over ``points``,
        including the overflow-epoch folding for coordinates beyond the
        enclosing cube: per point, the per-axis epochs ``c // 2**bits``
        sum into one epoch number and the residues index the cube curve.

        Args:
            points: ``(n, ndim)`` array of non-negative integers.

        Returns:
            ``(n,)`` array of curve positions, bit-for-bit equal to the
            scalar path.  int64 when the positions fit; object dtype of
            exact Python ints (via the scalar oracle) otherwise.
        """
        pts = np.asarray(points)
        if pts.ndim != 2 or pts.shape[1] != self.ndim:
            arity = pts.shape[1] if pts.ndim == 2 else pts.shape
            raise ChunkError(
                f"point arity {arity} != rectangle arity {self.ndim}"
            )
        if pts.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if self.bits >= 63 or (
            pts.dtype.kind == "u"
            and int(pts.max()) > np.iinfo(np.int64).max
        ):
            # Order-63+ curves overflow the int64 epoch arithmetic
            # below, and astype would *wrap* unsigned values >= 2**63:
            # both cases defer to the exact scalar oracle.
            return np.array(
                [self.index(tuple(row)) for row in pts.tolist()],
                dtype=object,
            )
        try:
            pts = pts.astype(np.int64, copy=False)
        except (OverflowError, TypeError):
            # Coordinates beyond int64 fold into overflow epochs that
            # only the arbitrary-precision scalar path can represent.
            return np.array(
                [self.index(tuple(row)) for row in pts.tolist()],
                dtype=object,
            )
        if pts.min() < 0:
            raise ChunkError(
                f"negative grid coordinate {int(pts.min())}"
            )
        limit = 1 << self.bits
        overflow = np.sum(pts // limit, axis=1)
        if (
            self.bits * self.ndim > 63
            or (int(overflow.max()) + 1) * self.index_space >= 1 << 63
        ):
            # Positions exceed int64: defer to the exact scalar oracle.
            return np.array(
                [self.index(tuple(row)) for row in pts.tolist()],
                dtype=object,
            )
        clipped = pts % limit
        base = hilbert_index_batch(clipped, self.bits)
        return overflow * self.index_space + base
