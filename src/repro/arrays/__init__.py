"""Array data model substrate (SciDB-style, paper §2).

Public surface:

* :class:`~repro.arrays.schema.ArraySchema`,
  :class:`~repro.arrays.schema.DimensionSpec`,
  :class:`~repro.arrays.schema.AttributeSpec`,
  :func:`~repro.arrays.schema.parse_schema` — array declarations.
* :class:`~repro.arrays.chunk.ChunkData`,
  :class:`~repro.arrays.chunk.ChunkRef` — chunk payloads and identities.
* :class:`~repro.arrays.array.LocalArray`,
  :func:`~repro.arrays.array.chunk_cells` — cell-level ingest and reads.
* :class:`~repro.arrays.storage.ChunkStore`,
  :class:`~repro.arrays.storage.SpillTier` — node-local storage with
  an optional byte-budgeted LRU over the disk tier.
* :class:`~repro.arrays.segment.SegmentStore`,
  :class:`~repro.arrays.segment.DiskIO` — mmap-backed columnar
  segment files (the cold tier; survives process restart).
* :class:`~repro.arrays.coords.Box` — n-d box algebra.
* :func:`~repro.arrays.sfc.hilbert_index`,
  :func:`~repro.arrays.sfc.hilbert_index_batch`,
  :class:`~repro.arrays.sfc.RectangleHilbert` — space-filling curve.
"""

from repro.arrays.array import LocalArray, chunk_cells, chunk_cells_scalar
from repro.arrays.chunk import ChunkData, ChunkKey, ChunkRef, empty_chunk
from repro.arrays.coords import Box, bounding_box
from repro.arrays.schema import (
    ArraySchema,
    AttributeSpec,
    DimensionSpec,
    parse_schema,
)
from repro.arrays.sfc import (
    RectangleHilbert,
    bits_for_extent,
    hilbert_index,
    hilbert_index_batch,
    hilbert_point,
)
from repro.arrays.segment import DiskIO, SegmentStore
from repro.arrays.storage import ChunkStore, SpillTier

__all__ = [
    "ArraySchema",
    "AttributeSpec",
    "Box",
    "ChunkData",
    "ChunkKey",
    "ChunkRef",
    "ChunkStore",
    "DimensionSpec",
    "DiskIO",
    "SegmentStore",
    "SpillTier",
    "LocalArray",
    "RectangleHilbert",
    "bits_for_extent",
    "bounding_box",
    "chunk_cells",
    "chunk_cells_scalar",
    "empty_chunk",
    "hilbert_index",
    "hilbert_index_batch",
    "hilbert_point",
    "parse_schema",
]
