"""On-disk columnar segments: the cold tier beneath :class:`ChunkStore`.

One :class:`SegmentStore` manages one node's spill directory.  Every
chunk payload is persisted as one *segment file* — cell coordinates plus
one value column per attribute, followed by a small JSON footer — and a
directory-level ``MANIFEST.json`` maps live chunk identities to their
segment files (plus each array's schema declaration, so a cold directory
is self-describing).  Reads go through :mod:`mmap` and copy the columns
out, so a fault touches only the one file it needs.

Durability contract
-------------------
Segment files are immutable once written: an update writes a *new* file
(names are never reused — a monotonic counter persists in the manifest)
and the manifest flips to it atomically (``os.replace`` of a fully
written temp file).  The manifest is therefore the commit point; files
it does not reference are invisible orphans.  Every read validates
magic, framing, and a CRC-32 over the body, so a torn write — a
truncated segment behind a stale manifest — fails loudly with
:class:`~repro.errors.SegmentCorruptError` instead of returning wrong
cells.

Concurrency: a :class:`SegmentStore` performs no locking of its own.
The owning :class:`~repro.arrays.storage.SpillTier` serializes every
call under its tier lock; the recovery path (:meth:`SegmentStore.open`)
is single-threaded by construction.

All actual I/O funnels through a :class:`DiskIO` adapter so tests can
inject faults (short reads, ``OSError`` on the Nth write) without
monkey-patching the module.
"""

from __future__ import annotations

import json
import mmap
import os
import pickle
import struct
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.arrays.chunk import ChunkData, ChunkRef
from repro.arrays.schema import ArraySchema, parse_schema
from repro.errors import SegmentCorruptError, StorageError

#: Leading magic of every segment file (8 bytes, version-bearing).
SEGMENT_MAGIC = b"RSEG0001"
#: Trailing magic — a file not ending in this was torn mid-write.
SEGMENT_TAIL = b"RSEGEND1"
#: ``<footer length>`` trailer field, little-endian u64.
_TRAILER = struct.Struct("<Q")

_MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_VERSION = 1
_SEGMENT_VERSION = 1

#: Value-column codecs: ``raw`` is the dtype's native little-endian
#: bytes; ``pickle`` carries object columns (AIS string attributes).
_CODEC_RAW = "raw"
_CODEC_PICKLE = "pickle"


class DiskIO:
    """All file-system access of a :class:`SegmentStore`.

    The default implementation is the real thing; tests subclass it
    (``FaultyIO``) to fail the Nth read or write, truncate a mapping,
    or drop a flush — the store above must then either surface a typed
    error or retry, never corrupt its accounting.
    """

    def write_file(self, path: str, data: bytes) -> None:
        """Write ``data`` to ``path`` atomically (temp file + replace)."""
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def read_bytes(self, path: str) -> bytes:
        """Read a small file (the manifest) fully into memory."""
        with open(path, "rb") as fh:
            return fh.read()

    def map_segment(self, path: str) -> bytes:
        """The full contents of one segment file.

        Maps the file and copies it out (segments are immutable, so the
        copy is the simplest safe lifetime: no mapping outlives the
        call, and numpy views built on the result own real memory).
        An empty file cannot be mapped; return its (empty) bytes so the
        validator rejects it as truncated rather than ``mmap`` raising.
        """
        with open(path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            if size == 0:
                return b""
            with mmap.mmap(
                fh.fileno(), 0, access=mmap.ACCESS_READ
            ) as mapped:
                return bytes(mapped)

    def remove(self, path: str) -> None:
        """Delete one file; a missing file is not an error."""
        try:
            os.remove(path)
        except FileNotFoundError:
            pass


class _Entry:
    """One live chunk in the manifest: its file and byte accounting."""

    __slots__ = ("file", "size_bytes", "attr_bytes")

    def __init__(
        self,
        file: str,
        size_bytes: float,
        attr_bytes: Dict[str, float],
    ) -> None:
        self.file = file
        self.size_bytes = size_bytes
        self.attr_bytes = attr_bytes


def _ref_token(ref: ChunkRef) -> str:
    return f"{ref.array}|{','.join(map(str, ref.key))}"


def _parse_token(token: str) -> ChunkRef:
    array, _, key = token.partition("|")
    if not key:
        raise SegmentCorruptError(
            f"manifest chunk token {token!r} is malformed"
        )
    return ChunkRef(array, tuple(int(c) for c in key.split(",")))


def _encode_segment(chunk: ChunkData) -> bytes:
    """Serialize one chunk payload into segment-file bytes."""
    coords, columns = chunk.payload_parts()
    body: List[bytes] = [SEGMENT_MAGIC]
    offset = len(SEGMENT_MAGIC)

    coord_bytes = np.ascontiguousarray(coords, dtype=np.int64).tobytes()
    coords_meta = {"offset": offset, "nbytes": len(coord_bytes)}
    body.append(coord_bytes)
    offset += len(coord_bytes)

    cols_meta = []
    for spec in chunk.schema.attributes:
        values = columns[spec.name]
        if values.dtype == object:
            blob = pickle.dumps(
                values.tolist(), protocol=pickle.HIGHEST_PROTOCOL
            )
            codec, dtype = _CODEC_PICKLE, "object"
        else:
            arr = np.ascontiguousarray(values)
            blob = arr.tobytes()
            codec, dtype = _CODEC_RAW, arr.dtype.str
        cols_meta.append({
            "name": spec.name,
            "dtype": dtype,
            "codec": codec,
            "offset": offset,
            "nbytes": len(blob),
        })
        body.append(blob)
        offset += len(blob)

    payload = b"".join(body)
    footer = {
        "version": _SEGMENT_VERSION,
        "array": chunk.schema.name,
        "key": list(chunk.key),
        "cells": int(coords.shape[0]),
        "ndim": int(chunk.schema.ndim),
        "size_bytes": chunk.size_bytes,
        "attr_bytes": chunk.attr_bytes,
        "coords": coords_meta,
        "columns": cols_meta,
        "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
    }
    footer_bytes = json.dumps(footer, sort_keys=True).encode("utf-8")
    return b"".join([
        payload,
        footer_bytes,
        _TRAILER.pack(len(footer_bytes)),
        SEGMENT_TAIL,
    ])


def _corrupt(path: str, reason: str) -> SegmentCorruptError:
    return SegmentCorruptError(f"segment {path}: {reason}")


def _decode_segment(
    raw: bytes, path: str
) -> Tuple[
    Dict[str, Any], npt.NDArray[np.int64], Dict[str, npt.NDArray[Any]]
]:
    """Validate and decode segment bytes → (footer, coords, columns).

    Every framing field is checked before it is trusted; any mismatch
    raises :class:`SegmentCorruptError` naming the file and the reason.
    """
    tail_len = _TRAILER.size + len(SEGMENT_TAIL)
    if len(raw) < len(SEGMENT_MAGIC) + tail_len:
        raise _corrupt(path, f"truncated ({len(raw)} bytes)")
    if raw[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise _corrupt(path, "bad magic")
    if raw[-len(SEGMENT_TAIL):] != SEGMENT_TAIL:
        raise _corrupt(path, "missing end marker (torn write)")
    (footer_len,) = _TRAILER.unpack(
        raw[-tail_len: -len(SEGMENT_TAIL)]
    )
    footer_end = len(raw) - tail_len
    footer_off = footer_end - footer_len
    if footer_len == 0 or footer_off < len(SEGMENT_MAGIC):
        raise _corrupt(path, f"implausible footer length {footer_len}")
    try:
        footer = json.loads(raw[footer_off:footer_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _corrupt(path, f"unreadable footer ({exc})") from exc
    if footer.get("version") != _SEGMENT_VERSION:
        raise _corrupt(
            path, f"unsupported version {footer.get('version')!r}"
        )
    if zlib.crc32(raw[:footer_off]) & 0xFFFFFFFF != footer.get("crc32"):
        raise _corrupt(path, "body checksum mismatch")

    cells = int(footer["cells"])
    ndim = int(footer["ndim"])

    def _slice(meta: Dict[str, Any], what: str) -> bytes:
        off, n = int(meta["offset"]), int(meta["nbytes"])
        if off < len(SEGMENT_MAGIC) or off + n > footer_off:
            raise _corrupt(path, f"{what} column escapes the body")
        return raw[off: off + n]

    coord_raw = _slice(footer["coords"], "coords")
    if len(coord_raw) != cells * ndim * 8:
        raise _corrupt(path, "coords column has wrong byte length")
    coords = np.frombuffer(coord_raw, dtype=np.int64).reshape(
        cells, ndim
    ).copy()

    columns: Dict[str, npt.NDArray[Any]] = {}
    for meta in footer["columns"]:
        blob = _slice(meta, meta["name"])
        if meta["codec"] == _CODEC_PICKLE:
            try:
                values_list = pickle.loads(blob)
            except Exception as exc:  # pickle raises a zoo of types
                raise _corrupt(
                    path, f"column {meta['name']!r} unpicklable ({exc})"
                ) from exc
            if len(values_list) != cells:
                raise _corrupt(
                    path, f"column {meta['name']!r} has wrong length"
                )
            values = np.empty(cells, dtype=object)
            values[:] = values_list
        else:
            dtype = np.dtype(meta["dtype"])
            if len(blob) != cells * dtype.itemsize:
                raise _corrupt(
                    path,
                    f"column {meta['name']!r} has wrong byte length",
                )
            values = np.frombuffer(blob, dtype=dtype).copy()
        columns[meta["name"]] = values
    return footer, coords, columns


class SegmentStore:
    """One node's spill directory: segment files plus a manifest.

    Build with :meth:`create` (fresh directory) or :meth:`open` (attach
    to a directory left by a previous process — restart recovery).  The
    in-memory entry table mirrors the on-disk manifest between
    :meth:`flush` calls; batch callers stage all writes first
    (:meth:`write_staged`), then :meth:`commit` the batch, so a failed
    write leaves both the table and the disk untouched.
    """

    def __init__(
        self,
        root: str,
        io: Optional[DiskIO] = None,
        _entries: Optional[Dict[ChunkRef, _Entry]] = None,
        _schemas: Optional[Dict[str, str]] = None,
        _counter: int = 0,
    ) -> None:
        self.root = str(root)
        self.io = io if io is not None else DiskIO()
        self._entries: Dict[ChunkRef, _Entry] = _entries or {}
        self._schema_decls: Dict[str, str] = _schemas or {}
        self._schemas: Dict[str, ArraySchema] = {}
        self._counter = _counter

    # -- construction --------------------------------------------------
    @classmethod
    def create(
        cls, root: str, io: Optional[DiskIO] = None
    ) -> "SegmentStore":
        """A fresh, empty store; refuses a directory that has data."""
        root = str(root)
        manifest = os.path.join(root, _MANIFEST_NAME)
        if os.path.exists(manifest):
            raise StorageError(
                f"segment directory {root} already holds a manifest; "
                "use SegmentStore.open() (restart recovery) or point "
                "at a clean directory"
            )
        os.makedirs(root, exist_ok=True)
        store = cls(root, io)
        store.flush()
        return store

    @classmethod
    def open(
        cls, root: str, io: Optional[DiskIO] = None
    ) -> "SegmentStore":
        """Attach to a directory written by a previous process.

        Only the manifest is read eagerly; segment files are validated
        lazily on first fault, which is what makes rehydrating a large
        cold directory cheap.
        """
        root = str(root)
        manifest = os.path.join(root, _MANIFEST_NAME)
        store = cls(root, io)
        try:
            raw = store.io.read_bytes(manifest)
        except FileNotFoundError:
            raise SegmentCorruptError(
                f"segment directory {root} has no {_MANIFEST_NAME}; "
                "nothing to recover"
            ) from None
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SegmentCorruptError(
                f"manifest {manifest} is unreadable ({exc})"
            ) from exc
        if doc.get("version") != _MANIFEST_VERSION:
            raise SegmentCorruptError(
                f"manifest {manifest} has unsupported version "
                f"{doc.get('version')!r}"
            )
        store._counter = int(doc.get("counter", 0))
        store._schema_decls = dict(doc.get("schemas", {}))
        for token, meta in doc.get("chunks", {}).items():
            ref = _parse_token(token)
            if ref.array not in store._schema_decls:
                raise SegmentCorruptError(
                    f"manifest {manifest} lists chunk {token!r} of an "
                    "array with no recorded schema"
                )
            store._entries[ref] = _Entry(
                str(meta["file"]),
                float(meta["size_bytes"]),
                {
                    k: float(v)
                    for k, v in meta.get("attr_bytes", {}).items()
                },
            )
        return store

    # -- manifest ------------------------------------------------------
    def _flush_doc(
        self,
        entries: Dict[ChunkRef, _Entry],
        schemas: Dict[str, str],
    ) -> None:
        doc = {
            "version": _MANIFEST_VERSION,
            "counter": self._counter,
            "schemas": dict(sorted(schemas.items())),
            "chunks": {
                _ref_token(ref): {
                    "file": entry.file,
                    "size_bytes": entry.size_bytes,
                    "attr_bytes": entry.attr_bytes,
                }
                for ref, entry in sorted(
                    entries.items(),
                    key=lambda kv: (kv[0].array, kv[0].key),
                )
            },
        }
        data = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.io.write_file(
            os.path.join(self.root, _MANIFEST_NAME), data
        )

    def flush(self) -> None:
        """Persist the entry table (atomic replace — the commit point)."""
        self._flush_doc(self._entries, self._schema_decls)

    # -- writes --------------------------------------------------------
    def write_staged(self, chunk: ChunkData) -> str:
        """Write ``chunk`` to a fresh segment file; do not commit it.

        Returns the file name.  The entry table is untouched, so a
        failure farther into a batch leaves every live chunk readable
        from its old file; :meth:`discard_staged` reclaims the orphans.
        """
        self._counter += 1
        fname = f"seg-{self._counter:08d}.seg"
        self.io.write_file(
            os.path.join(self.root, fname), _encode_segment(chunk)
        )
        return fname

    def commit(self, staged: Dict[ChunkRef, Tuple[ChunkData, str]]) -> None:
        """Flip the manifest to a batch of staged files.

        The candidate entry table is flushed *before* it replaces the
        live one, so a failed flush leaves memory and disk agreeing on
        the old state (the staged files stay invisible orphans).
        Replaced old segment files are removed only after the manifest
        lands — a crash at any point leaves a manifest whose every
        reference exists on disk.
        """
        entries = dict(self._entries)
        schemas = dict(self._schema_decls)
        orphans: List[str] = []
        for ref, (chunk, fname) in staged.items():
            old = entries.get(ref)
            if old is not None:
                orphans.append(old.file)
            entries[ref] = _Entry(
                fname, chunk.size_bytes, dict(chunk.attr_bytes)
            )
            schemas.setdefault(ref.array, chunk.schema.declaration())
        self._flush_doc(entries, schemas)
        self._entries = entries
        self._schema_decls = schemas
        for ref, (chunk, _fname) in staged.items():
            self._schemas.setdefault(ref.array, chunk.schema)
        self._purge(orphans)

    def discard_staged(self, files: List[str]) -> None:
        """Best-effort removal of staged files after a failed batch."""
        self._purge(files)

    def delete_many(self, refs: List[ChunkRef]) -> None:
        """Drop chunks from the manifest, then reclaim their files.

        Same flush-then-swap discipline as :meth:`commit`: a failed
        flush leaves every chunk still committed and readable.
        """
        entries = dict(self._entries)
        orphans: List[str] = []
        for ref in refs:
            entry = entries.pop(ref, None)
            if entry is not None:
                orphans.append(entry.file)
        self._flush_doc(entries, self._schema_decls)
        self._entries = entries
        self._purge(orphans)

    def _purge(self, files: List[str]) -> None:
        for fname in files:
            try:
                self.io.remove(os.path.join(self.root, fname))
            except OSError:
                # An undeletable orphan wastes disk but can never be
                # read again — the manifest no longer references it.
                pass

    # -- reads ---------------------------------------------------------
    def read(
        self, ref: ChunkRef
    ) -> Tuple[npt.NDArray[np.int64], Dict[str, npt.NDArray[Any]]]:
        """Load one chunk's ``(coords, columns)`` from its segment file.

        Raises
        ------
        StorageError
            If ``ref`` is not in the manifest.
        SegmentCorruptError
            If the file fails validation or names a different chunk
            than the manifest claims.
        """
        entry = self._entries.get(ref)
        if entry is None:
            raise StorageError(
                f"segment store {self.root} holds no chunk {ref}"
            )
        path = os.path.join(self.root, entry.file)
        try:
            raw = self.io.map_segment(path)
        except FileNotFoundError:
            raise _corrupt(
                path, "file missing behind a live manifest entry"
            ) from None
        footer, coords, columns = _decode_segment(raw, path)
        if (footer["array"] != ref.array
                or tuple(footer["key"]) != ref.key):
            raise _corrupt(
                path,
                f"holds chunk {footer['array']}@{footer['key']}, "
                f"manifest says {ref}",
            )
        return coords, columns

    def schema_of(self, array: str) -> ArraySchema:
        """The recorded schema of one array (parsed once, then cached)."""
        schema = self._schemas.get(array)
        if schema is None:
            decl = self._schema_decls.get(array)
            if decl is None:
                raise StorageError(
                    f"segment store {self.root} has no schema for "
                    f"array {array!r}"
                )
            schema = parse_schema(decl)
            self._schemas[array] = schema
        return schema

    # -- introspection -------------------------------------------------
    def __contains__(self, ref: ChunkRef) -> bool:
        return ref in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[Tuple[ChunkRef, float, Dict[str, float]]]:
        """``(ref, size_bytes, attr_bytes)`` for every live chunk."""
        for ref, entry in sorted(
            self._entries.items(), key=lambda kv: (kv[0].array, kv[0].key)
        ):
            yield ref, entry.size_bytes, dict(entry.attr_bytes)

    def total_bytes(self) -> float:
        """Modeled bytes of every chunk the manifest holds."""
        return sum(e.size_bytes for e in self._entries.values())
