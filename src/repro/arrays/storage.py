"""Node-local chunk storage with byte accounting.

Each simulated node owns a :class:`ChunkStore` holding the chunks assigned
to it.  The store tracks modeled bytes so the cluster can evaluate capacity,
storage skew (RSD), and rebalance plans without touching cell payloads.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.arrays.chunk import ChunkData, ChunkRef
from repro.errors import StorageError


class ChunkStore:
    """Physical chunk storage for one node.

    Chunks are keyed by :class:`ChunkRef` so one store can hold chunks from
    several arrays (the two MODIS bands, the AIS broadcast array, ...).
    """

    def __init__(self) -> None:
        self._chunks: Dict[ChunkRef, ChunkData] = {}
        self._bytes: float = 0.0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        """Total modeled bytes held by this store."""
        return self._bytes

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def refs(self) -> List[ChunkRef]:
        """All chunk refs (sorted for determinism)."""
        return sorted(self._chunks, key=lambda r: (r.array, r.key))

    def __contains__(self, ref: object) -> bool:
        return isinstance(ref, ChunkRef) and ref in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[ChunkRef]:
        return iter(self.refs())

    # ------------------------------------------------------------------
    def put(self, chunk: ChunkData) -> None:
        """Store a chunk; merges payloads if the ref already exists."""
        ref = chunk.ref()
        existing = self._chunks.get(ref)
        if existing is None:
            self._chunks[ref] = chunk
            self._bytes += chunk.size_bytes
        else:
            merged = existing.merged_with(chunk)
            self._bytes += merged.size_bytes - existing.size_bytes
            self._chunks[ref] = merged

    def get(self, ref: ChunkRef) -> ChunkData:
        """Fetch a chunk by ref; raises :class:`StorageError` when absent."""
        try:
            return self._chunks[ref]
        except KeyError:
            raise StorageError(f"store does not hold chunk {ref}") from None

    def maybe_get(self, ref: ChunkRef) -> Optional[ChunkData]:
        return self._chunks.get(ref)

    def evict(self, ref: ChunkRef) -> ChunkData:
        """Remove and return a chunk (the send side of a rebalance move)."""
        chunk = self._chunks.pop(ref, None)
        if chunk is None:
            raise StorageError(f"cannot evict missing chunk {ref}")
        self._bytes -= chunk.size_bytes
        return chunk

    def bytes_of(self, ref: ChunkRef) -> float:
        """Modeled bytes of one stored chunk."""
        return self.get(ref).size_bytes

    def chunks(self) -> Iterator[ChunkData]:
        for ref in self.refs():
            yield self._chunks[ref]

    def clear(self) -> None:
        self._chunks.clear()
        self._bytes = 0.0
