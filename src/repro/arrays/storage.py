"""Node-local chunk storage with byte accounting and an optional disk tier.

Each simulated node owns a :class:`ChunkStore` holding the chunks assigned
to it.  The store tracks modeled bytes so the cluster can evaluate capacity,
storage skew (RSD), and rebalance plans without touching cell payloads.

The deterministic ref ordering (:meth:`ChunkStore.refs`) is cached with a
dirty bit: mutations that change the key set invalidate it, and the sort
re-runs at most once per mutation instead of once per query.  The batch
APIs (:meth:`ChunkStore.put_many` / :meth:`ChunkStore.evict_many`) are
what the coordinator's grouped insert/rebalance/remove passes call — one
validation sweep and one byte-accounting update per group instead of one
per chunk.

Tiered mode
-----------
A store built with ``segments=`` (a
:class:`~repro.arrays.segment.SegmentStore`) gains a disk tier beneath
the in-memory payloads, managed by a :class:`SpillTier`:

* **Write-through** — every ``put`` persists the chunk's payload to a
  segment file *before* the store commits it, so eviction is free (drop
  the in-memory pair, never any I/O) and a process restart loses
  nothing (:meth:`~repro.arrays.segment.SegmentStore.open` +
  :meth:`ChunkStore.adopt_spilled` rehydrate the directory).
* **Byte-budgeted LRU** — resident payloads are capped at
  ``memory_budget`` bytes; the coldest unpinned chunk spills first.  A
  faulting read (:meth:`SpillTier.fault`) loads the payload back and
  re-enters it into the LRU.
* **Materialize-on-exit** — any chunk object that leaves the tier (the
  pre-merge handle replaced by a ``put``, an evicted or removed chunk)
  is faulted in and detached *before* its segment file is reclaimed.
  Catalog delta logs and pinned snapshots hold exactly these retired
  handles, and they stay readable forever.

Invariant (tiered): a chunk handle with ``_payload is None`` is owned by
exactly one live store, its ref is in that store's segment manifest, and
``_tier`` points at that store's tier.  Everything the tier does
preserves it, which is what makes concurrent snapshot reads race-safe —
the worst a racing evict can do is hand a reader a freshly loaded copy
of identical bytes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import lockdep
from repro.arrays.chunk import ChunkData, ChunkRef
from repro.arrays.segment import SegmentStore
from repro.errors import StorageError


class SpillTier:
    """The byte-budgeted LRU of hot payloads over one segment store.

    All state — the LRU table, residency accounting, pins, and the
    telemetry counters — mutates under one re-entrant lock, which also
    serializes every call into the underlying
    :class:`~repro.arrays.segment.SegmentStore`.  Query threads faulting
    through :meth:`fault` and the coordinator batch-writing through the
    owning store therefore never interleave mid-update.
    """

    def __init__(
        self,
        segments: SegmentStore,
        memory_budget: Optional[float] = None,
    ) -> None:
        if memory_budget is not None and memory_budget < 0:
            raise StorageError("memory_budget must be non-negative")
        self.segments = segments
        self.memory_budget = (
            float(memory_budget) if memory_budget is not None else None
        )
        self.lock = threading.RLock()
        #: ref → resident chunk, oldest first (LRU order).
        self._resident: "OrderedDict[ChunkRef, ChunkData]" = OrderedDict()
        self._resident_bytes = 0.0
        # Monotonic sum of |operand| over every residency update; bounds
        # the float rounding the running sum can have accumulated, so
        # ``check`` can tell drift from a real accounting leak.
        self._churn_bytes = 0.0
        self._pins: Dict[ChunkRef, int] = {}
        # Lifetime counters (monotonic).
        self.fault_count = 0
        self.eviction_count = 0
        # Drainable I/O window (see drain_io) — what the query layer
        # charges through ``charge_io``.
        self._io_read_bytes = 0.0
        self._io_written_bytes = 0.0

    # -- residency accounting ------------------------------------------
    @property
    def resident_bytes(self) -> float:
        """Bytes of payloads currently held in memory."""
        return self._resident_bytes

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    def fault(self, chunk: ChunkData) -> Tuple:
        """Load a spilled payload back into memory (the read path).

        Called by :meth:`ChunkData.payload_parts` when the handle is
        cold.  Re-checks residency under the lock (another thread may
        have faulted the same chunk first), loads from the segment
        file, accounts the bytes, and sheds cold payloads down to the
        budget.  A failed segment read mutates nothing.
        """
        with self.lock, lockdep.held("spill-tier"):
            parts = chunk._payload
            ref = chunk.ref()
            if parts is not None:
                if ref in self._resident:
                    self._resident.move_to_end(ref)
                return parts
            coords, columns = self.segments.read(ref)
            parts = (coords, columns)
            chunk._payload = parts
            self._resident[ref] = chunk
            self._resident_bytes += chunk.size_bytes
            self._churn_bytes += chunk.size_bytes
            self.fault_count += 1
            self._io_read_bytes += chunk.size_bytes
            self.evict_over_budget()
            return parts

    def evict_over_budget(self) -> None:
        """Spill cold unpinned payloads until within the byte budget.

        Spilling is free: write-through already persisted every
        payload, so shedding is a pure in-memory drop that cannot fail.
        Pinned chunks are skipped — the budget may overshoot while pins
        are held and recovers when they release.
        """
        budget = self.memory_budget
        if budget is None:
            return
        with self.lock, lockdep.held("spill-tier"):
            if self._resident_bytes <= budget:
                return
            pinned: List[Tuple[ChunkRef, ChunkData]] = []
            while self._resident_bytes > budget and self._resident:
                ref, chunk = self._resident.popitem(last=False)
                if self._pins.get(ref):
                    pinned.append((ref, chunk))
                    continue
                chunk._payload = None
                self._resident_bytes -= chunk.size_bytes
                self._churn_bytes += chunk.size_bytes
                self.eviction_count += 1
            # Re-enter pinned survivors at the cold end (original order
            # preserved) so they are the first candidates once unpinned.
            for ref, chunk in reversed(pinned):
                self._resident[ref] = chunk
                self._resident.move_to_end(ref, last=False)
            if not self._resident:
                # Fully drained: discard the running sum's accumulated
                # float residue instead of carrying it forever.
                self._resident_bytes = 0.0

    # -- pinning -------------------------------------------------------
    def pin_many(self, refs: Sequence[ChunkRef]) -> None:
        """Exempt chunks from eviction (counted — pins nest)."""
        with self.lock, lockdep.held("spill-tier"):
            for ref in refs:
                self._pins[ref] = self._pins.get(ref, 0) + 1

    def unpin_many(self, refs: Sequence[ChunkRef]) -> None:
        """Release pins and shed any overshoot they were holding back."""
        with self.lock, lockdep.held("spill-tier"):
            for ref in refs:
                count = self._pins.get(ref, 0) - 1
                if count > 0:
                    self._pins[ref] = count
                else:
                    self._pins.pop(ref, None)
            self.evict_over_budget()

    @contextmanager
    def pinned(self, refs: Sequence[ChunkRef]) -> Iterator[None]:
        refs = list(refs)
        self.pin_many(refs)
        try:
            yield
        finally:
            self.unpin_many(refs)

    # -- membership (called by the owning ChunkStore, under lock) ------
    def register(self, chunk: ChunkData) -> None:
        """Adopt a chunk into the tier (resident or already spilled)."""
        chunk._tier = self
        if chunk._payload is not None:
            ref = chunk.ref()
            if ref not in self._resident:
                self._resident_bytes += chunk.size_bytes
                self._churn_bytes += chunk.size_bytes
            self._resident[ref] = chunk
            self._resident.move_to_end(ref)

    def detach(self, chunk: ChunkData) -> None:
        """Remove a *materialized* chunk from the tier for good.

        The handle keeps its in-memory payload and is no longer backed
        by (or counted against) this tier — the shape delta logs and
        pinned snapshots require of retired handles.
        """
        if chunk._payload is None:  # pragma: no cover - guarded by callers
            raise StorageError(
                f"cannot detach spilled chunk {chunk.ref()}; "
                "materialize it first"
            )
        ref = chunk.ref()
        if self._resident.pop(ref, None) is not None:
            self._resident_bytes -= chunk.size_bytes
            self._churn_bytes += chunk.size_bytes
            if not self._resident:
                self._resident_bytes = 0.0
        self._pins.pop(ref, None)
        chunk._tier = None

    # -- telemetry -----------------------------------------------------
    def note_written(self, nbytes: float) -> None:
        with self.lock, lockdep.held("spill-tier"):
            self._io_written_bytes += nbytes

    def drain_io(self) -> Tuple[float, float]:
        """``(read, written)`` segment bytes since the last drain."""
        with self.lock, lockdep.held("spill-tier"):
            out = (self._io_read_bytes, self._io_written_bytes)
            self._io_read_bytes = 0.0
            self._io_written_bytes = 0.0
            return out

    def stats(self) -> Dict[str, float]:
        with self.lock, lockdep.held("spill-tier"):
            return {
                "memory_budget": (
                    self.memory_budget
                    if self.memory_budget is not None else float("inf")
                ),
                "resident_bytes": self._resident_bytes,
                "resident_chunks": float(len(self._resident)),
                "spilled_chunks": float(len(self.segments)),
                "fault_count": float(self.fault_count),
                "eviction_count": float(self.eviction_count),
            }

    def check(self) -> None:
        """Audit LRU accounting invariants (test hook; raises on drift)."""
        with self.lock, lockdep.held("spill-tier"):
            total = 0.0
            for ref, chunk in self._resident.items():
                if chunk._payload is None:
                    raise StorageError(
                        f"LRU lists {ref} as resident but its payload "
                        "is gone"
                    )
                if chunk._tier is not self:
                    raise StorageError(
                        f"resident chunk {ref} is attached to a "
                        "different tier"
                    )
                if ref not in self.segments:
                    raise StorageError(
                        f"resident chunk {ref} has no segment backing "
                        "(write-through violated)"
                    )
                total += chunk.size_bytes
            # The running sum reassociates additions the fresh sum
            # doesn't, so allow rounding proportional to everything
            # ever accounted — far below any real leak (one chunk).
            slack = 1e-9 * max(1.0, self._churn_bytes)
            if abs(total - self._resident_bytes) > slack:
                raise StorageError(
                    f"LRU byte accounting drifted: tracked "
                    f"{self._resident_bytes}, actual {total}"
                )
            if self.memory_budget is not None and not self._pins:
                if self._resident_bytes > self.memory_budget + slack:
                    raise StorageError(
                        f"unpinned resident bytes {self._resident_bytes} "
                        f"exceed budget {self.memory_budget}"
                    )


class ChunkStore:
    """Physical chunk storage for one node.

    Chunks are keyed by :class:`ChunkRef` so one store can hold chunks from
    several arrays (the two MODIS bands, the AIS broadcast array, ...).

    Parameters
    ----------
    memory_budget : float, optional
        Resident-payload byte cap (tiered mode only).  ``None`` means
        unbounded residency — payloads still write through to segments.
    segments : SegmentStore, optional
        The disk tier.  Omitted (the default), the store is the classic
        all-in-memory structure, byte-for-byte identical to its
        pre-tier behavior — that path is the ``REPRO_STORAGE=memory``
        parity oracle.
    """

    def __init__(
        self,
        memory_budget: Optional[float] = None,
        segments: Optional[SegmentStore] = None,
    ) -> None:
        self._chunks: Dict[ChunkRef, ChunkData] = {}
        self._bytes: float = 0.0
        self._sorted: Optional[List[ChunkRef]] = None  # None = dirty
        if segments is None:
            if memory_budget is not None:
                raise StorageError(
                    "memory_budget requires a segment store to spill to"
                )
            self._tier: Optional[SpillTier] = None
        else:
            self._tier = SpillTier(segments, memory_budget)

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        """Total modeled bytes held by this store."""
        return self._bytes

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def tier(self) -> Optional[SpillTier]:
        """The spill tier, or ``None`` for an all-in-memory store."""
        return self._tier

    @property
    def memory_budget(self) -> Optional[float]:
        tier = self._tier
        return tier.memory_budget if tier is not None else None

    def refs(self) -> List[ChunkRef]:
        """All chunk refs, sorted for determinism.

        The sorted list is cached and only rebuilt after a mutation
        changed the key set (puts of new refs, evictions) — repeated
        queries pay an O(1) check, not an O(n log n) sort.  Callers must
        treat the returned list as read-only.
        """
        if self._sorted is None:
            self._sorted = sorted(
                self._chunks, key=lambda r: (r.array, r.key)
            )
        return self._sorted

    def __contains__(self, ref: object) -> bool:
        return isinstance(ref, ChunkRef) and ref in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[ChunkRef]:
        return iter(self.refs())

    # ------------------------------------------------------------------
    def put(self, chunk: ChunkData) -> ChunkData:
        """Store a chunk; merges payloads if the ref already exists.

        Returns the chunk object the store now holds — the input for a
        first-time put, the merged :class:`ChunkData` otherwise (the
        chunk catalog tracks exactly this object as the payload handle).
        """
        if self._tier is not None:
            return self._put_many_tiered([chunk])[0]
        ref = chunk.ref()
        existing = self._chunks.get(ref)
        if existing is None:
            self._chunks[ref] = chunk
            self._bytes += chunk.size_bytes
            self._sorted = None
            return chunk
        merged = existing.merged_with(chunk)
        self._bytes += merged.size_bytes - existing.size_bytes
        self._chunks[ref] = merged
        return merged

    def put_many(self, chunks: Sequence[ChunkData]) -> List[ChunkData]:
        """Store many chunks (in order); returns the stored objects.

        Equivalent to calling :meth:`put` per chunk, with one sorted-ref
        invalidation and one running-bytes update for the whole group.
        In tiered mode the group is durable before it is visible: every
        payload lands in a fresh segment file and the manifest flips
        atomically, then the in-memory table commits; any I/O failure
        leaves the store exactly as it was.
        """
        if self._tier is not None:
            return self._put_many_tiered(chunks)
        stored: List[ChunkData] = []
        delta = 0.0
        dirty = False
        table = self._chunks
        for chunk in chunks:
            ref = chunk.ref()
            existing = table.get(ref)
            if existing is None:
                table[ref] = chunk
                delta += chunk.size_bytes
                dirty = True
                stored.append(chunk)
            else:
                merged = existing.merged_with(chunk)
                delta += merged.size_bytes - existing.size_bytes
                table[ref] = merged
                stored.append(merged)
        self._bytes += delta
        if dirty:
            self._sorted = None
        return stored

    def _put_many_tiered(
        self, chunks: Sequence[ChunkData]
    ) -> List[ChunkData]:
        tier = self._tier
        assert tier is not None
        with tier.lock, lockdep.held("spill-tier"):
            # 1. Compute the final per-ref chunk objects, merging in
            #    input order.  Merge sources are pinned so the faults
            #    the merges themselves trigger cannot evict a source
            #    mid-batch.
            finals: Dict[ChunkRef, ChunkData] = {}
            originals: Dict[ChunkRef, Optional[ChunkData]] = {}
            order: List[ChunkRef] = []
            stored: List[ChunkData] = []
            merge_refs = [
                c.ref() for c in chunks if c.ref() in self._chunks
            ]
            # The pin covers the whole batch: the pre-merge handles
            # must stay materialized from the merge reads through their
            # detach in step 3 (a mid-batch eviction would strip a
            # handle the delta log keeps forever).
            with tier.pinned(merge_refs):
                for chunk in chunks:
                    ref = chunk.ref()
                    if ref in finals:
                        current: Optional[ChunkData] = finals[ref]
                    else:
                        current = self._chunks.get(ref)
                        originals[ref] = current
                        order.append(ref)
                    new = (
                        chunk if current is None
                        else current.merged_with(chunk)
                    )
                    finals[ref] = new
                    stored.append(new)
                # 2. Make the batch durable: stage every segment
                #    write, then flip the manifest.  Failure unwinds to
                #    the pre-call state (staged files become invisible
                #    orphans and are reclaimed best-effort).
                staged: Dict[ChunkRef, Tuple[ChunkData, str]] = {}
                try:
                    for ref in order:
                        staged[ref] = (
                            finals[ref],
                            tier.segments.write_staged(finals[ref]),
                        )
                    tier.segments.commit(staged)
                except Exception:
                    tier.segments.discard_staged(
                        [fname for _chunk, fname in staged.values()]
                    )
                    raise
                # 3. Commit in memory: pure bookkeeping, cannot fail.
                delta = 0.0
                dirty = False
                written = 0.0
                for ref in order:
                    old = originals[ref]
                    new = finals[ref]
                    written += new.size_bytes
                    if old is None:
                        delta += new.size_bytes
                        dirty = True
                    else:
                        delta += new.size_bytes - old.size_bytes
                        tier.detach(old)
                    self._chunks[ref] = new
                    tier.register(new)
                self._bytes += delta
                if dirty:
                    self._sorted = None
                tier.note_written(written)
            tier.evict_over_budget()
            return stored

    def get(self, ref: ChunkRef) -> ChunkData:
        """Fetch a chunk by ref; raises :class:`StorageError` when absent."""
        try:
            return self._chunks[ref]
        except KeyError:
            raise StorageError(f"store does not hold chunk {ref}") from None

    def maybe_get(self, ref: ChunkRef) -> Optional[ChunkData]:
        return self._chunks.get(ref)

    def evict(self, ref: ChunkRef) -> ChunkData:
        """Remove and return a chunk (the send side of a rebalance move)."""
        if self._tier is not None:
            return self._evict_many_tiered([ref])[0]
        chunk = self._chunks.pop(ref, None)
        if chunk is None:
            raise StorageError(f"cannot evict missing chunk {ref}")
        self._bytes -= chunk.size_bytes
        self._sorted = None
        return chunk

    def evict_many(
        self, refs: Sequence[ChunkRef]
    ) -> List[ChunkData]:
        """Remove and return many chunks, validating the whole batch first.

        The batch is all-or-nothing: a missing or duplicate ref raises
        :class:`StorageError` before any chunk leaves the store.  In
        tiered mode every departing chunk is materialized first (a
        failed segment read aborts with the store unchanged), so the
        returned handles stay readable after their files are reclaimed.
        """
        if self._tier is not None:
            return self._evict_many_tiered(refs)
        self._validate_evict(refs)
        pop = self._chunks.pop
        evicted = [pop(ref) for ref in refs]
        self._bytes -= sum(c.size_bytes for c in evicted)
        if evicted:
            self._sorted = None
        return evicted

    def _validate_evict(self, refs: Sequence[ChunkRef]) -> None:
        seen = set()
        for ref in refs:
            if ref not in self._chunks:
                raise StorageError(f"cannot evict missing chunk {ref}")
            if ref in seen:
                raise StorageError(
                    f"duplicate chunk {ref} in evict batch"
                )
            seen.add(ref)

    def _evict_many_tiered(
        self, refs: Sequence[ChunkRef]
    ) -> List[ChunkData]:
        tier = self._tier
        assert tier is not None
        with tier.lock, lockdep.held("spill-tier"):
            self._validate_evict(refs)
            # Materialize every departing payload under a pin — the
            # faults must not evict each other — so a segment-read
            # failure aborts before anything leaves the store.
            tier.pin_many(refs)
            try:
                for ref in refs:
                    self._chunks[ref].payload_parts()
            except BaseException:
                tier.unpin_many(refs)
                raise
            # Drop the manifest entries first: a failed manifest flush
            # aborts with the store intact (chunks stay resident; their
            # pins release).
            try:
                tier.segments.delete_many(list(refs))
            except BaseException:
                tier.unpin_many(refs)
                raise
            evicted = []
            for ref in refs:
                chunk = self._chunks.pop(ref)
                tier.detach(chunk)  # also releases the pin
                evicted.append(chunk)
            self._bytes -= sum(c.size_bytes for c in evicted)
            if evicted:
                self._sorted = None
            return evicted

    # -- tiered-only surface -------------------------------------------
    def adopt_spilled(self, chunk: ChunkData) -> None:
        """Adopt a cold handle whose payload already lives in segments.

        The restart-recovery path: :meth:`SegmentStore.open` lists the
        manifest, the caller builds :meth:`ChunkData.spilled` handles,
        and this wires them to the tier without any I/O — the first
        query read faults them in lazily.
        """
        tier = self._tier
        if tier is None:
            raise StorageError(
                "adopt_spilled requires a tiered store"
            )
        ref = chunk.ref()
        with tier.lock, lockdep.held("spill-tier"):
            if ref in self._chunks:
                raise StorageError(f"store already holds chunk {ref}")
            if chunk._payload is None and ref not in tier.segments:
                raise StorageError(
                    f"cannot adopt spilled chunk {ref}: no segment "
                    "backs it"
                )
            self._chunks[ref] = chunk
            self._bytes += chunk.size_bytes
            self._sorted = None
            tier.register(chunk)

    @contextmanager
    def pinned(self, refs: Sequence[ChunkRef]) -> Iterator[None]:
        """Pin chunks against eviction for a block (no-op untiered)."""
        tier = self._tier
        if tier is None:
            yield
        else:
            with tier.pinned(refs):
                yield

    def drain_io(self) -> Tuple[float, float]:
        """``(read, written)`` tier bytes since the last drain."""
        tier = self._tier
        return tier.drain_io() if tier is not None else (0.0, 0.0)

    # ------------------------------------------------------------------
    def bytes_of(self, ref: ChunkRef) -> float:
        """Modeled bytes of one stored chunk."""
        return self.get(ref).size_bytes

    def chunks(self) -> Iterator[ChunkData]:
        for ref in self.refs():
            yield self._chunks[ref]

    def clear(self) -> None:
        tier = self._tier
        if tier is not None:
            with tier.lock, lockdep.held("spill-tier"):
                # Retired handles must stay readable (delta logs hold
                # them): materialize and detach everything first.  Pins
                # hold until detach so the faults cannot evict each
                # other's work; detach releases them.
                refs = list(self._chunks)
                tier.pin_many(refs)
                try:
                    for chunk in self._chunks.values():
                        chunk.payload_parts()
                    tier.segments.delete_many(refs)
                except BaseException:
                    tier.unpin_many(refs)
                    raise
                for chunk in self._chunks.values():
                    tier.detach(chunk)
                self._chunks.clear()
                self._bytes = 0.0
                self._sorted = None
            return
        self._chunks.clear()
        self._bytes = 0.0
        self._sorted = None
