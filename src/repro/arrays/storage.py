"""Node-local chunk storage with byte accounting.

Each simulated node owns a :class:`ChunkStore` holding the chunks assigned
to it.  The store tracks modeled bytes so the cluster can evaluate capacity,
storage skew (RSD), and rebalance plans without touching cell payloads.

The deterministic ref ordering (:meth:`ChunkStore.refs`) is cached with a
dirty bit: mutations that change the key set invalidate it, and the sort
re-runs at most once per mutation instead of once per query.  The batch
APIs (:meth:`ChunkStore.put_many` / :meth:`ChunkStore.evict_many`) are
what the coordinator's grouped insert/rebalance/remove passes call — one
validation sweep and one byte-accounting update per group instead of one
per chunk.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.arrays.chunk import ChunkData, ChunkRef
from repro.errors import StorageError


class ChunkStore:
    """Physical chunk storage for one node.

    Chunks are keyed by :class:`ChunkRef` so one store can hold chunks from
    several arrays (the two MODIS bands, the AIS broadcast array, ...).
    """

    def __init__(self) -> None:
        self._chunks: Dict[ChunkRef, ChunkData] = {}
        self._bytes: float = 0.0
        self._sorted: Optional[List[ChunkRef]] = None  # None = dirty

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        """Total modeled bytes held by this store."""
        return self._bytes

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    def refs(self) -> List[ChunkRef]:
        """All chunk refs, sorted for determinism.

        The sorted list is cached and only rebuilt after a mutation
        changed the key set (puts of new refs, evictions) — repeated
        queries pay an O(1) check, not an O(n log n) sort.  Callers must
        treat the returned list as read-only.
        """
        if self._sorted is None:
            self._sorted = sorted(
                self._chunks, key=lambda r: (r.array, r.key)
            )
        return self._sorted

    def __contains__(self, ref: object) -> bool:
        return isinstance(ref, ChunkRef) and ref in self._chunks

    def __len__(self) -> int:
        return len(self._chunks)

    def __iter__(self) -> Iterator[ChunkRef]:
        return iter(self.refs())

    # ------------------------------------------------------------------
    def put(self, chunk: ChunkData) -> ChunkData:
        """Store a chunk; merges payloads if the ref already exists.

        Returns the chunk object the store now holds — the input for a
        first-time put, the merged :class:`ChunkData` otherwise (the
        chunk catalog tracks exactly this object as the payload handle).
        """
        ref = chunk.ref()
        existing = self._chunks.get(ref)
        if existing is None:
            self._chunks[ref] = chunk
            self._bytes += chunk.size_bytes
            self._sorted = None
            return chunk
        merged = existing.merged_with(chunk)
        self._bytes += merged.size_bytes - existing.size_bytes
        self._chunks[ref] = merged
        return merged

    def put_many(self, chunks: Sequence[ChunkData]) -> List[ChunkData]:
        """Store many chunks (in order); returns the stored objects.

        Equivalent to calling :meth:`put` per chunk, with one sorted-ref
        invalidation and one running-bytes update for the whole group.
        """
        stored: List[ChunkData] = []
        delta = 0.0
        dirty = False
        table = self._chunks
        for chunk in chunks:
            ref = chunk.ref()
            existing = table.get(ref)
            if existing is None:
                table[ref] = chunk
                delta += chunk.size_bytes
                dirty = True
                stored.append(chunk)
            else:
                merged = existing.merged_with(chunk)
                delta += merged.size_bytes - existing.size_bytes
                table[ref] = merged
                stored.append(merged)
        self._bytes += delta
        if dirty:
            self._sorted = None
        return stored

    def get(self, ref: ChunkRef) -> ChunkData:
        """Fetch a chunk by ref; raises :class:`StorageError` when absent."""
        try:
            return self._chunks[ref]
        except KeyError:
            raise StorageError(f"store does not hold chunk {ref}") from None

    def maybe_get(self, ref: ChunkRef) -> Optional[ChunkData]:
        return self._chunks.get(ref)

    def evict(self, ref: ChunkRef) -> ChunkData:
        """Remove and return a chunk (the send side of a rebalance move)."""
        chunk = self._chunks.pop(ref, None)
        if chunk is None:
            raise StorageError(f"cannot evict missing chunk {ref}")
        self._bytes -= chunk.size_bytes
        self._sorted = None
        return chunk

    def evict_many(
        self, refs: Sequence[ChunkRef]
    ) -> List[ChunkData]:
        """Remove and return many chunks, validating the whole batch first.

        The batch is all-or-nothing: a missing or duplicate ref raises
        :class:`StorageError` before any chunk leaves the store.
        """
        seen = set()
        for ref in refs:
            if ref not in self._chunks:
                raise StorageError(f"cannot evict missing chunk {ref}")
            if ref in seen:
                raise StorageError(
                    f"duplicate chunk {ref} in evict batch"
                )
            seen.add(ref)
        pop = self._chunks.pop
        evicted = [pop(ref) for ref in refs]
        self._bytes -= sum(c.size_bytes for c in evicted)
        if evicted:
            self._sorted = None
        return evicted

    def bytes_of(self, ref: ChunkRef) -> float:
        """Modeled bytes of one stored chunk."""
        return self.get(ref).size_bytes

    def chunks(self) -> Iterator[ChunkData]:
        for ref in self.refs():
            yield self._chunks[ref]

    def clear(self) -> None:
        self._chunks.clear()
        self._bytes = 0.0
        self._sorted = None
