"""Chunks: the unit of I/O, placement, and memory allocation.

A chunk is an n-dimensional subarray (paper §2).  Logically a chunk is
identified by its :data:`ChunkKey` — its coordinates in chunk-grid space.
Physically it stores only its non-empty cells: a coordinate table plus one
value column per attribute (SciDB's vertical partitioning stores each
attribute in its own physical chunk; we model that with per-attribute byte
accounting so queries pay I/O only for the attributes they touch).

Chunk *physical* size is variable and tracks occupancy, not the declared
chunk volume.  Generators may inflate the modeled ``size_bytes`` so that a
laptop-scale cell count represents a paper-scale (tens of MB) chunk; the
placement and provisioning layers only ever look at modeled bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.schema import ArraySchema
from repro.errors import ChunkError, StorageError

#: Chunk-grid coordinates of a chunk, one integer per dimension.
ChunkKey = Tuple[int, ...]


@dataclass(frozen=True)
class ChunkRef:
    """A globally unique chunk identity: ``(array name, chunk key)``.

    Placement maps and the cluster simulator key everything by
    :class:`ChunkRef` so multiple arrays (e.g. the two MODIS bands) can
    coexist in one database.  Two arrays with identical chunk keys get
    co-located by partitioners that place on ``key`` alone, which is what
    gives dimension-aligned joins their locality.
    """

    array: str
    key: ChunkKey

    def __post_init__(self) -> None:
        object.__setattr__(self, "key", tuple(int(c) for c in self.key))
        # Refs key every ledger dict in the placement hot path; caching
        # the hash makes each dict operation a C-level lookup instead of
        # re-hashing (array, key) through a generated Python method.
        object.__setattr__(self, "_hash", hash((self.array, self.key)))

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self):
        # Exclude the cached hash: str hashing is salted per process
        # (PYTHONHASHSEED), so a pickled hash from another interpreter
        # would break dict lookups against locally built refs.
        return (self.array, self.key)

    def __setstate__(self, state) -> None:
        array, key = state
        object.__setattr__(self, "array", array)
        object.__setattr__(self, "key", key)
        object.__setattr__(self, "_hash", hash((array, key)))

    @property
    def ndim(self) -> int:
        return len(self.key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.array}@{','.join(map(str, self.key))}"


class ChunkData:
    """The physical payload of one chunk: sparse cells plus byte accounting.

    Args:
        schema: owning array's schema.
        key: chunk-grid coordinates.
        coords: int64 array of shape ``(cells, ndim)`` with the cell
            coordinates (must all fall inside the chunk's box).
        attributes: mapping from attribute name to a 1-d value array of
            length ``cells``.  Every schema attribute must be present.
        size_bytes: modeled physical size.  Defaults to the actual numpy
            footprint; generators pass an inflated figure to emulate
            paper-scale chunks.

    The per-attribute byte shares (:attr:`attr_bytes`) model SciDB's
    vertical partitioning: ``attr_bytes[a]`` is the modeled footprint of the
    physical chunk holding attribute ``a``, proportional to its dtype width.

    Payload handle
    --------------
    The cell data itself lives behind a one-slot indirection:
    ``_payload`` is either the ``(coords, attributes)`` pair (*resident*)
    or ``None`` (*spilled* — the bytes live in the owning store's
    :class:`~repro.arrays.segment.SegmentStore` and ``_tier`` knows how
    to fault them back in).  :attr:`coords` and :attr:`attributes` are
    faulting properties, so every existing consumer reads through the
    handle unchanged; identity, schema, key, and byte accounting are
    always available without I/O.  ``_payload`` is read and written as
    one tuple, so a concurrent evict/fault race hands a reader a stale
    but internally consistent pair — never half of each.
    """

    __slots__ = ("schema", "key", "size_bytes", "attr_bytes", "_ref",
                 "_payload", "_tier")

    def __init__(
        self,
        schema: ArraySchema,
        key: Sequence[int],
        coords: np.ndarray,
        attributes: Mapping[str, np.ndarray],
        size_bytes: Optional[float] = None,
    ) -> None:
        self.schema = schema
        self.key: ChunkKey = tuple(int(c) for c in key)
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != schema.ndim:
            raise ChunkError(
                f"coords must have shape (cells, {schema.ndim}), "
                f"got {coords.shape}"
            )

        missing = set(schema.attribute_names) - set(attributes)
        if missing:
            raise ChunkError(
                f"chunk {self.key} of {schema.name} missing attributes "
                f"{sorted(missing)}"
            )
        extra = set(attributes) - set(schema.attribute_names)
        if extra:
            raise ChunkError(
                f"chunk {self.key} of {schema.name} has unknown attributes "
                f"{sorted(extra)}"
            )
        columns: Dict[str, np.ndarray] = {}
        for spec in schema.attributes:
            values = np.asarray(attributes[spec.name])
            if values.shape != (coords.shape[0],):
                raise ChunkError(
                    f"attribute {spec.name} has {values.shape[0] if values.ndim else 'scalar'} "
                    f"values for {coords.shape[0]} cells"
                )
            columns[spec.name] = values
        self._payload = (coords, columns)
        self._tier = None

        box = schema.chunk_box(self.key)
        if coords.shape[0]:
            lo = coords.min(axis=0)
            hi = coords.max(axis=0)
            if (np.any(lo < np.asarray(box.lo))
                    or np.any(hi >= np.asarray(box.hi))):
                raise ChunkError(
                    f"cells escape chunk {self.key} box {box} of "
                    f"{schema.name}"
                )

        actual = self._actual_nbytes()
        if size_bytes is None:
            size_bytes = float(actual)
        if size_bytes < 0:
            raise ChunkError("size_bytes must be non-negative")
        self.size_bytes = float(size_bytes)
        self.attr_bytes = self._vertical_shares(self.size_bytes)
        self._ref: Optional[ChunkRef] = None

    @classmethod
    def from_validated_cells(
        cls,
        schema: ArraySchema,
        key: ChunkKey,
        coords: np.ndarray,
        attributes: Dict[str, np.ndarray],
        size_bytes: float,
    ) -> "ChunkData":
        """Trusted constructor for pre-validated cell groups (ingest path).

        :func:`repro.arrays.array.chunk_cells` validates a whole batch
        once — attribute completeness and lengths, cell bounds — and the
        chunk key is *derived* from the coordinates, so every group is
        in-box by construction.  This path skips the per-chunk
        re-validation of ``__init__`` (set algebra, box containment,
        footprint recount), which dominates ingest time for workloads
        producing many small chunks.

        Parameters
        ----------
        schema : ArraySchema
            Owning array's schema.
        key : tuple of int
            Chunk-grid coordinates (already plain ints).
        coords : numpy.ndarray of int64, shape (cells, ndim)
            Cell coordinates, all inside the chunk's box.
        attributes : dict of str to numpy.ndarray
            Exactly the schema's attribute columns, each of length
            ``cells``.
        size_bytes : float
            Modeled physical size (the caller prices the footprint).

        Returns
        -------
        ChunkData
            An instance indistinguishable from one built by the
            validating constructor on the same inputs.
        """
        self = object.__new__(cls)
        self.schema = schema
        self.key = key
        self._payload = (coords, attributes)
        self._tier = None
        self.size_bytes = float(size_bytes)
        self.attr_bytes = self._vertical_shares(self.size_bytes)
        self._ref = None
        return self

    @classmethod
    def spilled(
        cls,
        schema: ArraySchema,
        key: ChunkKey,
        size_bytes: float,
        attr_bytes: Optional[Mapping[str, float]] = None,
    ) -> "ChunkData":
        """A handle whose payload lives on disk (restart recovery path).

        The handle is fully functional for placement, catalog, and cost
        accounting (identity, schema, modeled bytes) without any I/O;
        the first :attr:`coords`/:attr:`attributes` read faults the cell
        data in through the spill tier the owning store registers via
        ``_tier``.  Reading a spilled handle that no store has adopted
        raises :class:`~repro.errors.StorageError`.
        """
        self = object.__new__(cls)
        self.schema = schema
        self.key = tuple(int(c) for c in key)
        self._payload = None
        self._tier = None
        self.size_bytes = float(size_bytes)
        if attr_bytes is None:
            self.attr_bytes = self._vertical_shares(self.size_bytes)
        else:
            self.attr_bytes = {k: float(v) for k, v in attr_bytes.items()}
        self._ref = None
        return self

    # -- payload handle -------------------------------------------------
    def payload_parts(
        self,
    ) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """One consistent ``(coords, attributes)`` pair (faults if spilled).

        Kernels that read both halves should call this once instead of
        touching :attr:`coords` and :attr:`attributes` separately: the
        tuple is immutable, so the pair is guaranteed to describe the
        same cells even if the spill tier evicts this chunk between the
        two reads.
        """
        parts = self._payload
        if parts is None:
            tier = self._tier
            if tier is None:
                raise StorageError(
                    f"chunk {self.ref()} is spilled but detached from "
                    "any spill tier; it cannot be read"
                )
            parts = tier.fault(self)
        return parts

    @property
    def coords(self) -> np.ndarray:
        """Cell coordinates, ``(cells, ndim)`` int64 (faults if spilled)."""
        return self.payload_parts()[0]

    @property
    def attributes(self) -> Dict[str, np.ndarray]:
        """Attribute name → value column (faults if spilled)."""
        return self.payload_parts()[1]

    @property
    def is_resident(self) -> bool:
        """Whether the cell payload is currently in memory."""
        return self._payload is not None

    # ------------------------------------------------------------------
    def _actual_nbytes(self) -> int:
        total = self.coords.nbytes
        for spec in self.schema.attributes:
            values = self.attributes[spec.name]
            if values.dtype == object:
                total += spec.itemsize * len(values)
            else:
                total += values.nbytes
        return total

    def _vertical_shares(self, total: float) -> Dict[str, float]:
        """Apportion ``total`` bytes across attributes by dtype width.

        Each attribute's physical chunk also carries a copy of the cell
        coordinates (SciDB stores per-attribute chunks addressable by
        position); we fold the coordinate overhead proportionally.
        """
        widths = {a.name: a.itemsize for a in self.schema.attributes}
        denom = sum(widths.values())
        if denom == 0:
            denom = 1
        return {name: total * w / denom for name, w in widths.items()}

    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Number of non-empty cells stored."""
        return int(self.coords.shape[0])

    @property
    def ndim(self) -> int:
        return self.schema.ndim

    def ref(self) -> ChunkRef:
        """This chunk's global identity (constructed once, then cached).

        Every storage and catalog hot path keys dicts by the ref, so
        rebuilding it — tuple conversion plus hashing — per call shows
        up in grouped rebalances; the identity never changes, cache it.
        """
        ref = self._ref
        if ref is None:
            ref = ChunkRef(self.schema.name, self.key)
            self._ref = ref
        return ref

    def bytes_for(self, attrs: Sequence[str]) -> float:
        """Modeled bytes of the physical chunks for the given attributes."""
        total = 0.0
        for name in attrs:
            if name not in self.attr_bytes:
                raise ChunkError(
                    f"array {self.schema.name} has no attribute {name!r}"
                )
            total += self.attr_bytes[name]
        return total

    def values(self, attr: str) -> np.ndarray:
        """Value column for one attribute."""
        if attr not in self.attributes:
            raise ChunkError(
                f"array {self.schema.name} has no attribute {attr!r}"
            )
        return self.attributes[attr]

    def dim_values(self, dim_name: str) -> np.ndarray:
        """Cell coordinates along one named dimension."""
        idx = self.schema.dimension_index(dim_name)
        return self.coords[:, idx]

    def merged_with(self, other: "ChunkData") -> "ChunkData":
        """A new chunk holding this chunk's cells plus ``other``'s.

        Used when a later insert lands in an already-materialized chunk
        (possible for unbounded dimensions when a batch spans a chunk
        boundary).  Modeled sizes add.
        """
        if other.schema is not self.schema and (
                other.schema.declaration() != self.schema.declaration()):
            raise ChunkError("cannot merge chunks of different schemas")
        if other.key != self.key:
            raise ChunkError(
                f"cannot merge chunk {other.key} into chunk {self.key}"
            )
        coords = np.concatenate([self.coords, other.coords], axis=0)
        attrs = {
            name: np.concatenate(
                [self.attributes[name], other.attributes[name]]
            )
            for name in self.schema.attribute_names
        }
        return ChunkData(
            self.schema, self.key, coords, attrs,
            size_bytes=self.size_bytes + other.size_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        # Never fault from repr: debugging a spilled handle must not do
        # I/O (or raise, for a detached one).
        cells = (
            str(int(self._payload[0].shape[0]))
            if self._payload is not None else "spilled"
        )
        return (
            f"ChunkData({self.schema.name}@{self.key}, "
            f"cells={cells}, bytes={self.size_bytes:.0f})"
        )


def empty_chunk(schema: ArraySchema, key: Sequence[int]) -> ChunkData:
    """A chunk with zero cells (rarely stored; useful in tests)."""
    coords = np.empty((0, schema.ndim), dtype=np.int64)
    attrs = {
        a.name: np.empty(0, dtype=a.dtype if a.dtype != "object" else object)
        for a in schema.attributes
    }
    return ChunkData(schema, key, coords, attrs)
