"""Array schemas in the SciDB style.

An array has *dimensions* — named integer axes, each with a declared range
(possibly unbounded above) and a *chunk interval* (stride) — and
*attributes* — named, typed scalars stored in each non-empty cell.  Together
they define the logical layout of the array (paper §2).

Schemas can be written in and parsed from the paper's declaration syntax::

    A<i:int32, j:float>[x=1:4,2, y=1:4,2]

which declares a 4x4 array with 2x2 chunks, an int32 attribute ``i`` and a
float attribute ``j``.  The MODIS and AIS schemas of §3 use the variant
``[time=0,*,1440, longitude=-180,180,12]`` where ``*`` marks an unbounded
dimension; both forms are accepted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.coords import Box, Coordinate
from repro.errors import SchemaError

#: numpy dtypes accepted for attributes, keyed by their schema-text name.
_DTYPE_ALIASES: Dict[str, str] = {
    "int8": "int8",
    "int16": "int16",
    "int32": "int32",
    "int64": "int64",
    "int": "int64",
    "uint8": "uint8",
    "uint16": "uint16",
    "uint32": "uint32",
    "uint64": "uint64",
    "float": "float64",
    "float32": "float32",
    "float64": "float64",
    "double": "float64",
    "bool": "bool",
    "char": "uint8",
    "string": "object",
}

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _check_name(name: str, what: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise SchemaError(f"invalid {what} name: {name!r}")
    return name


@dataclass(frozen=True)
class AttributeSpec:
    """A named, typed attribute stored in each non-empty cell.

    Attributes:
        name: attribute identifier.
        dtype: numpy dtype name (normalized; ``float`` becomes ``float64``).
    """

    name: str
    dtype: str

    def __post_init__(self) -> None:
        _check_name(self.name, "attribute")
        normalized = _DTYPE_ALIASES.get(self.dtype)
        if normalized is None:
            try:
                normalized = np.dtype(self.dtype).name
            except TypeError as exc:
                raise SchemaError(
                    f"unknown attribute dtype {self.dtype!r}"
                ) from exc
        object.__setattr__(self, "dtype", normalized)

    @property
    def itemsize(self) -> int:
        """Bytes per stored value (strings are modeled at 16 bytes)."""
        if self.dtype == "object":
            return 16
        return int(np.dtype(self.dtype).itemsize)

    def declaration(self) -> str:
        """Render as ``name:dtype`` schema text."""
        return f"{self.name}:{self.dtype}"


@dataclass(frozen=True)
class DimensionSpec:
    """A named dimension with a declared range and chunk interval.

    Attributes:
        name: dimension identifier.
        start: inclusive lower bound of the dimension.
        end: inclusive upper bound, or ``None`` for an unbounded dimension
            (e.g. a time series, declared ``time=0,*,1440``).
        chunk_interval: stride of a chunk along this dimension, in cells.
    """

    name: str
    start: int
    end: Optional[int]
    chunk_interval: int

    def __post_init__(self) -> None:
        _check_name(self.name, "dimension")
        if self.chunk_interval <= 0:
            raise SchemaError(
                f"dimension {self.name}: chunk interval must be positive, "
                f"got {self.chunk_interval}"
            )
        if self.end is not None and self.end < self.start:
            raise SchemaError(
                f"dimension {self.name}: end {self.end} < start {self.start}"
            )

    @property
    def bounded(self) -> bool:
        """True when the dimension has a declared upper bound."""
        return self.end is not None

    @property
    def extent(self) -> Optional[int]:
        """Number of cells along the dimension, or ``None`` if unbounded."""
        if self.end is None:
            return None
        return self.end - self.start + 1

    @property
    def chunk_count(self) -> Optional[int]:
        """Number of chunks along the dimension, or ``None`` if unbounded."""
        if self.extent is None:
            return None
        return -(-self.extent // self.chunk_interval)

    def chunk_of(self, coordinate: int) -> int:
        """Chunk-grid coordinate of a cell coordinate along this dimension."""
        if coordinate < self.start:
            raise SchemaError(
                f"coordinate {coordinate} below dimension {self.name} "
                f"start {self.start}"
            )
        if self.end is not None and coordinate > self.end:
            raise SchemaError(
                f"coordinate {coordinate} above dimension {self.name} "
                f"end {self.end}"
            )
        return (coordinate - self.start) // self.chunk_interval

    def chunk_low(self, chunk_coord: int) -> int:
        """Inclusive lowest cell coordinate of chunk ``chunk_coord``."""
        return self.start + chunk_coord * self.chunk_interval

    def chunk_range(self, lo: int, hi: int) -> Optional[Tuple[int, int]]:
        """Inclusive chunk-coordinate interval meeting cell range ``[lo, hi)``.

        The inverse of the :meth:`chunk_low` / :meth:`chunk_high` box
        math: a chunk coordinate ``c`` intersects the half-open cell
        interval exactly when ``chunk_range(lo, hi)[0] <= c <=
        chunk_range(lo, hi)[1]``.  Returns ``None`` when no chunk can
        intersect — the interval is empty, lies entirely below
        ``start``, or entirely above a bounded dimension's ``end`` (the
        end clamp matters: the last chunk's box stops at ``end`` even
        though its unclamped stride would reach further).
        """
        if hi <= lo or hi <= self.start:
            return None
        if self.end is not None and lo > self.end:
            return None
        c_lo = max(0, (lo - self.start) // self.chunk_interval)
        c_hi = (hi - 1 - self.start) // self.chunk_interval
        if self.chunk_count is not None:
            c_hi = min(c_hi, self.chunk_count - 1)
        if c_hi < c_lo:
            return None
        return c_lo, c_hi

    def chunk_high(self, chunk_coord: int) -> int:
        """Inclusive highest cell coordinate of chunk ``chunk_coord``."""
        high = self.chunk_low(chunk_coord) + self.chunk_interval - 1
        if self.end is not None:
            high = min(high, self.end)
        return high

    def declaration(self) -> str:
        """Render as ``name=start:end,interval`` schema text."""
        end = "*" if self.end is None else str(self.end)
        return f"{self.name}={self.start}:{end},{self.chunk_interval}"


@dataclass(frozen=True)
class ArraySchema:
    """A full array declaration: name, dimensions, and attributes.

    The schema is the shared vocabulary between the workload generators (who
    produce cells), the partitioners (who reason about chunk-grid space) and
    the query engine (who reads cells back).
    """

    name: str
    dimensions: Tuple[DimensionSpec, ...]
    attributes: Tuple[AttributeSpec, ...]

    def __post_init__(self) -> None:
        _check_name(self.name, "array")
        object.__setattr__(self, "dimensions", tuple(self.dimensions))
        object.__setattr__(self, "attributes", tuple(self.attributes))
        if not self.dimensions:
            raise SchemaError(f"array {self.name}: needs >= 1 dimension")
        if not self.attributes:
            raise SchemaError(f"array {self.name}: needs >= 1 attribute")
        seen = set()
        for spec in list(self.dimensions) + list(self.attributes):
            if spec.name in seen:
                raise SchemaError(
                    f"array {self.name}: duplicate name {spec.name!r}"
                )
            seen.add(spec.name)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.dimensions)

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def dimension(self, name: str) -> DimensionSpec:
        """Look up a dimension by name."""
        for d in self.dimensions:
            if d.name == name:
                return d
        raise SchemaError(f"array {self.name}: no dimension {name!r}")

    def attribute(self, name: str) -> AttributeSpec:
        """Look up an attribute by name."""
        for a in self.attributes:
            if a.name == name:
                return a
        raise SchemaError(f"array {self.name}: no attribute {name!r}")

    def dimension_index(self, name: str) -> int:
        """Position of a dimension in the schema's dimension order."""
        for i, d in enumerate(self.dimensions):
            if d.name == name:
                return i
        raise SchemaError(f"array {self.name}: no dimension {name!r}")

    @property
    def cell_width_bytes(self) -> int:
        """Bytes per fully-populated cell across all attributes."""
        return sum(a.itemsize for a in self.attributes)

    # ------------------------------------------------------------------
    # chunk-grid math
    # ------------------------------------------------------------------
    def chunk_of(self, cell: Sequence[int]) -> Coordinate:
        """Chunk-grid coordinates of the chunk containing ``cell``."""
        if len(cell) != self.ndim:
            raise SchemaError(
                f"cell arity {len(cell)} != array arity {self.ndim}"
            )
        return tuple(
            d.chunk_of(int(c)) for d, c in zip(self.dimensions, cell)
        )

    def chunk_box(self, chunk: Sequence[int]) -> Box:
        """Half-open box of *cell* coordinates covered by a chunk."""
        if len(chunk) != self.ndim:
            raise SchemaError(
                f"chunk arity {len(chunk)} != array arity {self.ndim}"
            )
        lo = tuple(
            d.chunk_low(int(c)) for d, c in zip(self.dimensions, chunk)
        )
        hi = tuple(
            d.chunk_high(int(c)) + 1 for d, c in zip(self.dimensions, chunk)
        )
        return Box(lo, hi)

    def chunk_intervals_of(
        self, region: Box
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Per-dimension chunk-coordinate intervals intersecting a region.

        The vectorized inverse of :meth:`chunk_box`: a chunk key ``k``
        satisfies ``chunk_box(k).intersects(region)`` exactly when
        ``lo[d] <= k[d] <= hi[d]`` for every dimension ``d`` of the
        returned ``(lo, hi)`` int64 arrays.  Region routing
        (:meth:`repro.core.catalog.ChunkCatalog.ids_in_region`) turns a
        query box into these intervals once and selects live chunks
        with one comparison over the catalog's key matrix — no per-chunk
        ``Box`` objects.

        Returns ``None`` when no chunk can intersect the region (empty
        box, or a box entirely outside the declared domain).

        Raises:
            SchemaError: if the region's arity differs from the array's.
        """
        if region.ndim != self.ndim:
            raise SchemaError(
                f"region arity {region.ndim} != array arity {self.ndim}"
            )
        lows = np.empty(self.ndim, dtype=np.int64)
        highs = np.empty(self.ndim, dtype=np.int64)
        for d, dim in enumerate(self.dimensions):
            interval = dim.chunk_range(region.lo[d], region.hi[d])
            if interval is None:
                return None
            lows[d], highs[d] = interval
        return lows, highs

    def grid_extent(self, observed: Optional[Iterable[Coordinate]] = None
                    ) -> Coordinate:
        """Per-dimension chunk counts of the grid.

        Bounded dimensions use their declared chunk count.  Unbounded
        dimensions take their extent from ``observed`` chunk coordinates
        (max + 1); if no observation is available they default to 1.
        """
        observed_max = [0] * self.ndim
        if observed is not None:
            for key in observed:
                for d in range(self.ndim):
                    if key[d] + 1 > observed_max[d]:
                        observed_max[d] = key[d] + 1
        extent = []
        for d, dim in enumerate(self.dimensions):
            if dim.chunk_count is not None:
                extent.append(max(dim.chunk_count, observed_max[d]))
            else:
                extent.append(max(1, observed_max[d]))
        return tuple(extent)

    def chunk_grid_box(self, observed: Optional[Iterable[Coordinate]] = None
                       ) -> Box:
        """Bounding :class:`Box` of chunk-grid space (origin at zero)."""
        return Box((0,) * self.ndim, self.grid_extent(observed))

    # ------------------------------------------------------------------
    # rendering / parsing
    # ------------------------------------------------------------------
    def declaration(self) -> str:
        """Render the schema in the paper's declaration syntax."""
        attrs = ", ".join(a.declaration() for a in self.attributes)
        dims = ", ".join(d.declaration() for d in self.dimensions)
        return f"{self.name}<{attrs}>[{dims}]"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.declaration()


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
_SCHEMA_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"<(?P<attrs>[^>]*)>\s*"
    r"\[(?P<dims>.*)\]\s*$",
    re.S,
)

# ``x=1:4,2`` (range form) or ``time=0,*,1440`` (comma form, * = unbounded)
_DIM_RANGE_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*"
    r"(?P<start>-?\d+)\s*:\s*(?P<end>-?\d+|\*)\s*,\s*(?P<interval>\d+)$"
)
_DIM_COMMA_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*"
    r"(?P<start>-?\d+)\s*,\s*(?P<end>-?\d+|\*)\s*,\s*(?P<interval>\d+)$"
)


def _split_top_level(text: str) -> Iterable[str]:
    """Split a comma-separated declaration list on dimension boundaries.

    Dimension declarations themselves contain commas (``x=1:4,2``), so we
    split on commas that are followed by a ``name=`` or ``name:`` token.
    """
    parts = []
    current = []
    tokens = text.split(",")
    for token in tokens:
        if "=" in token or ":" in token:
            if current:
                parts.append(",".join(current))
            current = [token]
        else:
            current.append(token)
    if current:
        parts.append(",".join(current))
    return [p.strip() for p in parts if p.strip()]


def parse_schema(text: str) -> ArraySchema:
    """Parse a declaration such as ``A<i:int32,j:float>[x=1:4,2, y=1:4,2]``.

    Both the colon range form (``x=1:4,2``) and the paper's comma form used
    for MODIS/AIS (``time=0,*,1440``) are accepted; ``*`` denotes an
    unbounded upper bound.

    Raises:
        SchemaError: if the text is not a valid declaration.
    """
    match = _SCHEMA_RE.match(text)
    if not match:
        raise SchemaError(f"cannot parse schema text: {text!r}")
    name = match.group("name")

    attributes = []
    for part in _split_top_level(match.group("attrs")):
        if ":" not in part:
            raise SchemaError(f"malformed attribute {part!r} in {name}")
        attr_name, _, dtype = part.partition(":")
        attributes.append(AttributeSpec(attr_name.strip(), dtype.strip()))

    dimensions = []
    for part in _split_top_level(match.group("dims")):
        m = _DIM_RANGE_RE.match(part) or _DIM_COMMA_RE.match(part)
        if not m:
            raise SchemaError(f"malformed dimension {part!r} in {name}")
        end_text = m.group("end")
        end = None if end_text == "*" else int(end_text)
        dimensions.append(
            DimensionSpec(
                name=m.group("name"),
                start=int(m.group("start")),
                end=end,
                chunk_interval=int(m.group("interval")),
            )
        )

    return ArraySchema(name, tuple(dimensions), tuple(attributes))
