"""n-dimensional coordinate and box algebra.

The partitioners in :mod:`repro.core` reason about *chunk grid space*: the
integer lattice obtained by dividing each array dimension by its chunk
interval.  This module provides the half-open box abstraction they share,
plus the mixed-radix row packing (:func:`row_packing` / :func:`pack_rows`)
that the batch kernels use to turn n-dimensional integer rows into one
sortable int64 key column.

A :class:`Box` is the n-dimensional generalization of a half-open interval
``[lo, hi)``.  Boxes are immutable; all operations return new boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChunkError

Coordinate = Tuple[int, ...]


def row_packing(
    rows: np.ndarray, pad: int = 0
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """(lo, span) packing of an int row table, or ``None`` on overflow.

    The shared front half of every packed-key kernel (cell chunking,
    grid group-bys, halo neighbour lookups): with per-column offsets
    ``lo`` and extents ``span``, :func:`pack_rows` becomes an
    order-preserving mixed-radix encoding — sorting the packed keys
    sorts the rows lexicographically, so one 1-d sort or ``np.unique``
    replaces the much slower multi-column variants.

    Parameters
    ----------
    rows : numpy.ndarray of int64, shape (n, d)
        Integer rows to pack.
    pad : int
        Widens the admitted range on both sides (stencil kernels pack
        neighbour rows one step outside the observed extremes).

    Returns
    -------
    (lo, span) : pair of numpy.ndarray, or None
        Per-column offsets and extents, or ``None`` when the padded
        span product cannot fit int64 — callers must then fall back to
        a multi-column path.  The bounds are computed with exact Python
        ints so extreme coordinates disable packing instead of wrapping
        into colliding keys.
    """
    if rows.shape[0] == 0 or rows.shape[1] == 0:
        return None
    los = [int(v) - pad for v in rows.min(axis=0)]
    his = [int(v) + pad for v in rows.max(axis=0)]
    spans = [h - lo + 1 for lo, h in zip(los, his)]
    total = 1
    for lo, span in zip(los, spans):
        total *= span
        if total > 2**62 or lo < -(2**62):
            return None
    return (
        np.array(los, dtype=np.int64),
        np.array(spans, dtype=np.int64),
    )


def pack_rows(
    rows: np.ndarray, lo: np.ndarray, span: np.ndarray
) -> np.ndarray:
    """Mixed-radix encode int64 rows into one scalar key column.

    ``lo``/``span`` must come from :func:`row_packing` over a row table
    covering these rows (padded when rows step outside it); the packing
    is then order-preserving and collision-free.
    """
    keys = np.zeros(rows.shape[0], dtype=np.int64)
    for d in range(rows.shape[1]):
        keys *= span[d]
        keys += rows[:, d] - lo[d]
    return keys


def pack_rows_void(rows: np.ndarray) -> np.ndarray:
    """View an (n, d) int64 row table as one lexicographic void column.

    The extent-free sibling of :func:`pack_rows`: a reinterpreting view
    (no copy when ``rows`` is already contiguous int64) whose scalar
    comparisons order rows lexicographically, so ``sort`` /
    ``searchsorted`` / ``intersect1d`` work on rows of any magnitude.
    Prefer :func:`pack_rows` when the extent fits int64 — arithmetic
    keys compare faster than structured voids.
    """
    r = np.ascontiguousarray(rows, dtype=np.int64)
    return r.view([("", np.int64)] * r.shape[1]).reshape(-1)


@dataclass(frozen=True)
class Box:
    """A half-open n-dimensional box ``[lo[d], hi[d])`` per dimension.

    Boxes tile chunk-grid space in the range partitioners (K-d Tree,
    Incremental Quadtree, Uniform Range) and describe query regions in the
    benchmark suites.

    Attributes:
        lo: inclusive lower corner, one integer per dimension.
        hi: exclusive upper corner, one integer per dimension.
    """

    lo: Coordinate
    hi: Coordinate

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ChunkError(
                f"box corners have mismatched arity: {self.lo} vs {self.hi}"
            )
        if not self.lo:
            raise ChunkError("boxes must have at least one dimension")
        for d, (lo_d, hi_d) in enumerate(zip(self.lo, self.hi)):
            if lo_d > hi_d:
                raise ChunkError(
                    f"box is inverted in dimension {d}: [{lo_d}, {hi_d})"
                )
        # Normalize to tuples so hashing is reliable even when the caller
        # passed lists.
        object.__setattr__(self, "lo", tuple(int(v) for v in self.lo))
        object.__setattr__(self, "hi", tuple(int(v) for v in self.hi))

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def shape(self) -> Coordinate:
        """Per-dimension extent (``hi - lo``)."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of lattice points contained in the box."""
        vol = 1
        for extent in self.shape:
            vol *= extent
        return vol

    def is_empty(self) -> bool:
        """True when any dimension has zero extent."""
        return any(h == l for l, h in zip(self.lo, self.hi))

    def contains(self, point: Sequence[int]) -> bool:
        """True when ``point`` lies inside the half-open box."""
        if len(point) != self.ndim:
            raise ChunkError(
                f"point arity {len(point)} != box arity {self.ndim}"
            )
        return all(
            l <= p < h for p, l, h in zip(point, self.lo, self.hi)
        )

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` is entirely inside this box."""
        if other.ndim != self.ndim:
            raise ChunkError("boxes have mismatched arity")
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersect(self, other: "Box") -> "Box":
        """The (possibly empty) intersection of two boxes."""
        if other.ndim != self.ndim:
            raise ChunkError("boxes have mismatched arity")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(l, min(a, b)) for l, a, b in zip(lo, self.hi, other.hi))
        return Box(lo, hi)

    def intersects(self, other: "Box") -> bool:
        """True when the boxes share at least one lattice point."""
        if other.ndim != self.ndim:
            raise ChunkError("boxes have mismatched arity")
        return all(
            max(al, bl) < min(ah, bh)
            for al, ah, bl, bh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def split(self, dim: int, at: int) -> Tuple["Box", "Box"]:
        """Split along ``dim`` at coordinate ``at`` into (lower, upper).

        ``at`` must satisfy ``lo[dim] < at < hi[dim]`` so both halves are
        non-empty.
        """
        if not 0 <= dim < self.ndim:
            raise ChunkError(f"split dimension {dim} out of range")
        if not self.lo[dim] < at < self.hi[dim]:
            raise ChunkError(
                f"split point {at} outside open interval "
                f"({self.lo[dim]}, {self.hi[dim]}) of dimension {dim}"
            )
        lower_hi = list(self.hi)
        lower_hi[dim] = at
        upper_lo = list(self.lo)
        upper_lo[dim] = at
        return Box(self.lo, tuple(lower_hi)), Box(tuple(upper_lo), self.hi)

    def halve(self, dim: int) -> Tuple["Box", "Box"]:
        """Split along ``dim`` at the midpoint (lower half rounds down)."""
        mid = (self.lo[dim] + self.hi[dim]) // 2
        if mid == self.lo[dim]:
            mid += 1
        return self.split(dim, mid)

    def orthants(self) -> Tuple["Box", ...]:
        """The ``2^k`` children obtained by halving every splittable dim.

        Dimensions of extent 1 are left alone, so a 2-d box yields four
        quarters (the classic quadtree step), a 3-d box yields octants, and
        a box that is already a single lattice point yields itself.
        """
        children = [self]
        for dim in range(self.ndim):
            next_children = []
            for box in children:
                if box.hi[dim] - box.lo[dim] >= 2:
                    next_children.extend(box.halve(dim))
                else:
                    next_children.append(box)
            children = next_children
        return tuple(children)

    def face_adjacent(self, other: "Box") -> bool:
        """True when the boxes share an (n-1)-dimensional face.

        Used by the Incremental Quadtree when grouping quarters: a pair of
        quarters may move together to a new host only when they are
        face-adjacent, which keeps each host's partition spatially
        contiguous.
        """
        if other.ndim != self.ndim:
            raise ChunkError("boxes have mismatched arity")
        touching_dim = None
        for d in range(self.ndim):
            overlap = min(self.hi[d], other.hi[d]) - max(self.lo[d], other.lo[d])
            if overlap > 0:
                continue
            if overlap == 0 and (
                self.hi[d] == other.lo[d] or other.hi[d] == self.lo[d]
            ):
                if touching_dim is not None:
                    return False  # they only meet at an edge or corner
                touching_dim = d
            else:
                return False  # separated by a gap in dimension d
        return touching_dim is not None

    def corners(self) -> Iterator[Coordinate]:
        """Iterate the ``2^n`` corner lattice points (hi is exclusive)."""
        ranges = [(l, h - 1) for l, h in zip(self.lo, self.hi)]
        n = self.ndim
        for mask in range(1 << n):
            yield tuple(
                ranges[d][1] if mask & (1 << d) else ranges[d][0]
                for d in range(n)
            )

    def points(self) -> Iterator[Coordinate]:
        """Iterate every lattice point in row-major order.

        Only suitable for small boxes (tests and the Uniform Range leaf
        enumeration); the volume is the product of the extents.
        """
        def walk(dim: int, prefix: Tuple[int, ...]) -> Iterator[Coordinate]:
            if dim == self.ndim:
                yield prefix
                return
            for v in range(self.lo[dim], self.hi[dim]):
                yield from walk(dim + 1, prefix + (v,))

        return walk(0, ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spans = ", ".join(
            f"{l}:{h}" for l, h in zip(self.lo, self.hi)
        )
        return f"Box[{spans}]"


def bounding_box(points: Sequence[Sequence[int]]) -> Box:
    """Smallest half-open box containing every point in ``points``."""
    if not points:
        raise ChunkError("cannot bound an empty point set")
    ndim = len(points[0])
    lo = [min(p[d] for p in points) for d in range(ndim)]
    hi = [max(p[d] for p in points) + 1 for d in range(ndim)]
    return Box(tuple(lo), tuple(hi))
