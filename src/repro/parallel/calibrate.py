"""Table-3-style cost-model calibration against live worker runs.

The paper derives its cost constants (``δ`` I/O and ``t`` network
seconds per GB, §6.2.2 / Table 3) by measuring its testbed.  This
module closes the same loop for the reproduction: it drives the
process-parallel backend through three microbench kinds at several
payload sizes, times the real wall-clock, prices the identical work
with :class:`~repro.query.cost.CostAccumulator` charges, and reports

* the **Pearson correlation** between measured and modeled per-node
  seconds for each kind (the regression-tested figure of merit), and
* **fitted seconds-per-byte rates** (least-squares byte slopes of the
  measured times) that :meth:`CostParameters.from_env` can feed back
  into simulated runs via ``REPRO_COST_*`` environment exports.

Microbench kinds
----------------
``io``
    Scatter: the engine ships a payload blob into a worker
    (:meth:`~repro.parallel.engine.ProcessEngine.store_blob`); modeled
    as one :meth:`~repro.cluster.costs.CostParameters.io_time` charge
    on the receiving node.
``scan``
    The worker packs a resident payload and the engine copies it out
    (:meth:`~repro.parallel.engine.ProcessEngine.fetch_blob`); modeled
    as an I/O charge plus an intensity-1 CPU charge on the owner.
``shuffle``
    One repartition leg between two workers relayed through the
    coordinator
    (:meth:`~repro.parallel.engine.ProcessEngine.relay_blob`); modeled
    as the endpoint-pair network charge.

Measured times take the **minimum over repeated trials** (classic
microbench denoising — the minimum estimates the noise-free cost), and
the fitted CPU rate is the scan slope net of the I/O slope, clamped at
zero, mirroring how the model composes a scan charge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.costs import GB, CostParameters
from repro.errors import ClusterError
from repro.query.cost import CostAccumulator

#: Payload sizes (bytes) of the quick CI leg and the full run.
SMOKE_SIZES = (1 << 16, 1 << 19, 1 << 22)
FULL_SIZES = (1 << 17, 1 << 19, 1 << 21, 1 << 23)

#: Fitted-rate → environment variable, matching
#: :data:`repro.cluster.costs.ENV_COST_OVERRIDES`.
_ENV_BY_RATE = {
    "io": "REPRO_COST_IO_S_PER_B",
    "network": "REPRO_COST_NETWORK_S_PER_B",
    "scan": "REPRO_COST_SCAN_S_PER_B",
}


@dataclass(frozen=True)
class CalibrationResult:
    """Measured-vs-modeled calibration of the process backend.

    Attributes:
        samples: one record per (kind, node, size) probe —
            ``{"kind", "node", "bytes", "measured_s", "modeled_s"}``.
        correlations: per-kind Pearson r between measured and modeled
            seconds across sizes and nodes.
        slopes: per-kind fitted measured seconds-per-**byte**.
        rates: fitted model rates in seconds-per-byte —
            ``io``, ``network``, and ``scan`` (CPU term of a scan,
            i.e. scan slope net of I/O, clamped at zero).
        trials: trials per probe (minimum taken).
        costs: the cost parameters the modeled seconds were priced with.
    """

    samples: List[dict] = field(default_factory=list)
    correlations: Dict[str, float] = field(default_factory=dict)
    slopes: Dict[str, float] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)
    trials: int = 1
    costs: CostParameters = CostParameters()

    def fitted_costs(
        self, base: Optional[CostParameters] = None
    ) -> CostParameters:
        """Cost parameters with the fitted rates substituted in."""
        return CostParameters.from_env(
            base=base if base is not None else self.costs,
            environ=self.env_exports(),
        )

    def env_exports(self) -> Dict[str, str]:
        """``REPRO_COST_*`` values that feed the fit back into runs."""
        return {
            _ENV_BY_RATE[name]: f"{rate:.6e}"
            for name, rate in sorted(self.rates.items())
        }

    def as_dict(self) -> dict:
        """JSON-ready form (bench reports embed this verbatim)."""
        return {
            "trials": self.trials,
            "correlations": {
                k: round(v, 6) for k, v in sorted(
                    self.correlations.items()
                )
            },
            "fitted_seconds_per_byte": {
                k: float(f"{v:.6e}") for k, v in sorted(
                    self.rates.items()
                )
            },
            "env_exports": self.env_exports(),
            "samples": self.samples,
        }

    def render(self) -> str:
        """Human-readable calibration summary."""
        lines = [
            "Table 3 calibration (process backend, "
            f"min of {self.trials} trials)",
            "",
            "kind     samples  corr(measured, modeled)  fitted s/B",
        ]
        fitted = {
            "io": self.rates.get("io"),
            "scan": self.rates.get("scan"),
            "shuffle": self.rates.get("network"),
        }
        for kind in ("io", "scan", "shuffle"):
            n = sum(1 for s in self.samples if s["kind"] == kind)
            corr = self.correlations.get(kind, float("nan"))
            rate = fitted.get(kind)
            rate_s = f"{rate:.3e}" if rate is not None else "-"
            lines.append(
                f"{kind:<8} {n:>7}  {corr:>23.4f}  {rate_s:>10}"
            )
        lines.append("")
        lines.append(
            "env exports: "
            + " ".join(
                f"{k}={v}" for k, v in sorted(
                    self.env_exports().items()
                )
            )
        )
        return "\n".join(lines)


def _byte_slope(nbytes: np.ndarray, seconds: np.ndarray) -> float:
    """Least-squares seconds-per-byte slope (clamped at zero)."""
    x = nbytes.astype(np.float64)
    y = seconds.astype(np.float64)
    var = np.var(x)
    if var == 0:
        return 0.0
    slope = float(np.cov(x, y, bias=True)[0, 1] / var)
    return max(slope, 0.0)


def _pearson(a: np.ndarray, b: np.ndarray) -> float:
    if a.size < 2 or np.std(a) == 0 or np.std(b) == 0:
        return float("nan")
    return float(np.corrcoef(a, b)[0, 1])


def calibrate(
    engine=None,
    sizes: Optional[Sequence[int]] = None,
    trials: int = 3,
    node_ids: Sequence[int] = (0, 1),
    costs: Optional[CostParameters] = None,
    smoke: bool = False,
) -> CalibrationResult:
    """Run the scan/transfer microbenches and fit the cost model.

    Args:
        engine: a live :class:`~repro.parallel.engine.ProcessEngine`;
            one is created (and shut down) when omitted.
        sizes: payload sizes in bytes; defaults to :data:`SMOKE_SIZES`
            or :data:`FULL_SIZES` by ``smoke``.
        trials: timed repetitions per probe; the minimum is kept.
        node_ids: worker nodes to probe (at least two — the shuffle
            bench needs a source and a destination).
        costs: cost parameters for the modeled seconds
            (:meth:`CostParameters.from_env` when omitted).
        smoke: pick the small size ladder (CI leg).

    Raises
    ------
    ClusterError
        On fewer than two nodes or no sizes.
    """
    from repro.parallel.engine import ProcessEngine

    node_ids = tuple(sorted(node_ids))
    if len(node_ids) < 2:
        raise ClusterError(
            "calibration needs at least two worker nodes"
        )
    if sizes is None:
        sizes = SMOKE_SIZES if smoke else FULL_SIZES
    sizes = tuple(int(s) for s in sizes)
    if not sizes:
        raise ClusterError("calibration needs at least one size")
    trials = max(1, int(trials))
    if costs is None:
        costs = CostParameters.from_env()

    own_engine = engine is None
    if own_engine:
        engine = ProcessEngine()
    samples: List[dict] = []
    try:
        engine.ensure_workers(node_ids)
        rng = np.random.default_rng(1729)
        for nbytes in sizes:
            payload = rng.random(max(1, nbytes // 8))
            for node in node_ids:
                samples.append(_probe_io(
                    engine, node, payload, trials, costs, node_ids
                ))
                samples.append(_probe_scan(
                    engine, node, payload, trials, costs, node_ids
                ))
            src, dst = node_ids[0], node_ids[1]
            samples.append(_probe_shuffle(
                engine, src, dst, payload, trials, costs, node_ids
            ))
            for node in node_ids:
                engine.drop_blobs(node, ["_cal", "_cal_rx"])
    finally:
        if own_engine:
            engine.shutdown()

    correlations: Dict[str, float] = {}
    slopes: Dict[str, float] = {}
    for kind in ("io", "scan", "shuffle"):
        rows = [s for s in samples if s["kind"] == kind]
        measured = np.array([s["measured_s"] for s in rows])
        modeled = np.array([s["modeled_s"] for s in rows])
        nbytes = np.array([s["bytes"] for s in rows])
        correlations[kind] = _pearson(measured, modeled)
        slopes[kind] = _byte_slope(nbytes, measured)
    rates = {
        "io": slopes["io"],
        "network": slopes["shuffle"],
        "scan": max(slopes["scan"] - slopes["io"], 0.0),
    }
    return CalibrationResult(
        samples=samples,
        correlations=correlations,
        slopes=slopes,
        rates=rates,
        trials=trials,
        costs=costs,
    )


def _time_min(fn, trials: int) -> float:
    best = float("inf")
    for _ in range(trials):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _modeled(
    node_ids: Sequence[int],
    charges: Sequence[Tuple[int, float]],
) -> float:
    acc = CostAccumulator(node_ids)
    for node, seconds in charges:
        acc.add_one(node, seconds)
    return acc.max_seconds()


def _probe_io(
    engine, node, payload, trials, costs, node_ids
) -> dict:
    measured = _time_min(
        lambda: engine.store_blob(node, "_cal", payload), trials
    )
    nbytes = int(payload.nbytes)
    return {
        "kind": "io",
        "node": int(node),
        "bytes": nbytes,
        "measured_s": measured,
        "modeled_s": _modeled(
            node_ids, [(node, costs.io_time(nbytes))]
        ),
    }


def _probe_scan(
    engine, node, payload, trials, costs, node_ids
) -> dict:
    engine.store_blob(node, "_cal", payload)
    measured = _time_min(
        lambda: engine.fetch_blob(node, "_cal"), trials
    )
    nbytes = int(payload.nbytes)
    return {
        "kind": "scan",
        "node": int(node),
        "bytes": nbytes,
        "measured_s": measured,
        "modeled_s": _modeled(
            node_ids,
            [
                (node, costs.io_time(nbytes)),
                (node, costs.cpu_time(nbytes)),
            ],
        ),
    }


def _probe_shuffle(
    engine, src, dst, payload, trials, costs, node_ids
) -> dict:
    engine.store_blob(src, "_cal", payload)
    measured = _time_min(
        lambda: engine.relay_blob(src, "_cal", dst, "_cal_rx"),
        trials,
    )
    nbytes = int(payload.nbytes)
    return {
        "kind": "shuffle",
        "node": int(dst),
        "bytes": nbytes,
        "measured_s": measured,
        "modeled_s": _modeled(
            node_ids,
            [
                (src, costs.network_time(nbytes)),
                (dst, costs.network_time(nbytes)),
            ],
        ),
    }
