"""The process-parallel execution engine.

:class:`ProcessEngine` backs every simulated node with a real worker
process (:mod:`repro.parallel.worker`) and keeps the workers' resident
chunk sets synchronized with the cluster's chunk catalog.  On top of
that substrate it provides:

* **Real scatter/gather** — :meth:`sync` scatters chunk payloads to
  their owner workers over shared-memory frames; :meth:`gather_pairs`
  collects a (chunk, node) pair list back and concatenates it in pair
  order, byte-identically to the in-process
  :func:`repro.core.catalog.concat_payload`.
* **Shuffle exchanges** — partitioned k-means, kNN mean-distance, and
  hash-shuffled equi-join, each split into per-partition worker kernels
  plus a coordinator combine (:mod:`repro.parallel.kernels`).  The
  module-level ``serial_*`` twins run the identical kernels serially in
  this process, so process and in-process execution agree bit-for-bit.
* **Failure containment** — every request is timeout-bounded; a killed,
  hung, or pipe-broken worker surfaces as
  :class:`~repro.errors.WorkerFailedError` carrying the node id, the
  worker is reaped with bounded joins, and the next :meth:`sync`
  respawns it and reloads its chunks.

Engine state (``_loaded``) maps each resident chunk ref to the exact
payload handle shipped to its worker; a gather over a pinned snapshot
whose handles are no longer the loaded ones (a mutation landed after
the pin) returns ``None`` so the session can answer from its frozen
handles locally — the MVCC contract survives the process backend.

Request/reply framing carries a per-worker sequence number; a reply
abandoned by a timed-out request is recognized by its stale sequence on
the next exchange and its shared-memory frame is disposed, so desync
never corrupts a later result.
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import lockdep
from repro.config import env_float, env_text
from repro.errors import ClusterError, WorkerFailedError
from repro.parallel import kernels
from repro.parallel.transport import (
    dispose_frame,
    pack_frame,
    unpack_frame,
)
from repro.parallel.worker import worker_main

#: Seconds a request may wait for its reply before the worker is
#: declared failed (``REPRO_EXEC_TIMEOUT`` overrides).
DEFAULT_REQUEST_TIMEOUT = 30.0


def pick_start_method() -> str:
    """Choose the multiprocessing start method for worker processes.

    ``REPRO_EXEC_START`` forces one.  Otherwise ``fork`` is preferred
    where available — workers inherit the loaded interpreter, so spawn
    re-import cost is avoided — except on Python ≥ 3.12 with threads
    already running, where forking a multi-threaded process warns (and
    ``PYTHONWARNINGS=error`` in CI would fail); ``spawn`` is the safe
    fallback there.
    """
    forced = env_text("REPRO_EXEC_START")
    if forced:
        return forced
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and (
        sys.version_info < (3, 12) or threading.active_count() == 1
    ):
        return "fork"
    return "spawn"


class _WorkerHandle:
    """One node's worker process plus its control-pipe endpoint."""

    __slots__ = ("node_id", "proc", "conn", "seq")

    def __init__(self, node_id: int, proc, conn) -> None:
        self.node_id = node_id
        self.proc = proc
        self.conn = conn
        self.seq = 0


class ProcessEngine:
    """Worker-process fleet mirroring one cluster's chunk placement.

    Thread-safe (one re-entrant lock serializes all requests — the
    concurrent query executor's threads share one engine).  Use as a
    context manager or call :meth:`shutdown`; the owning cluster also
    attaches a ``weakref.finalize`` so abandoned engines reap their
    workers.
    """

    def __init__(self, request_timeout: Optional[float] = None) -> None:
        if request_timeout is None:
            request_timeout = env_float(
                "REPRO_EXEC_TIMEOUT", DEFAULT_REQUEST_TIMEOUT
            )
        self.request_timeout = request_timeout
        self._ctx = multiprocessing.get_context(pick_start_method())
        self._lock = threading.RLock()
        self._workers: Dict[int, _WorkerHandle] = {}
        #: chunk ref -> (owner node, exact payload handle shipped there).
        self._loaded: Dict[object, Tuple[int, object]] = {}
        self._synced_epoch = -1
        self._synced_nodes: Tuple[int, ...] = ()
        #: gathers answered locally because the pinned snapshot predates
        #: the synced catalog epoch (MVCC fallback), for observability.
        self.stale_fallbacks = 0
        #: per-request timing/byte records for the calibration harness.
        self.request_log: List[dict] = []

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def ensure_workers(self, node_ids: Sequence[int]) -> None:
        """Spawn a worker for every listed node that lacks a live one."""
        with self._lock, lockdep.held("transport"):
            for node_id in node_ids:
                handle = self._workers.get(node_id)
                if handle is not None and handle.proc.is_alive():
                    continue
                if handle is not None:
                    self._reap(handle)
                    self._workers.pop(node_id, None)
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=worker_main,
                    args=(child_conn, node_id),
                    name=f"repro-worker-{node_id}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._workers[node_id] = _WorkerHandle(
                    node_id, proc, parent_conn
                )

    def worker_pids(self) -> Dict[int, int]:
        """Live worker process ids by node (failure-test hook)."""
        with self._lock, lockdep.held("transport"):
            return {
                node_id: handle.proc.pid
                for node_id, handle in sorted(self._workers.items())
            }

    def shutdown(self) -> None:
        """Stop every worker with timeout-bounded joins (idempotent)."""
        with self._lock, lockdep.held("transport"):
            for handle in self._workers.values():
                try:
                    handle.conn.send({"op": "shutdown"})
                except (OSError, ValueError, BrokenPipeError):
                    pass
            for handle in self._workers.values():
                self._drain_conn(handle)
                self._reap(handle)
            self._workers.clear()
            self._loaded.clear()
            self._synced_epoch = -1
            self._synced_nodes = ()

    def _drain_conn(self, handle: _WorkerHandle) -> None:
        """Dispose frames of any unread replies on a worker's pipe."""
        try:
            while handle.conn.poll(0):
                reply = handle.conn.recv()
                if isinstance(reply, dict):
                    dispose_frame(reply.get("frame"))
        except (EOFError, OSError):
            pass

    def _reap(self, handle: _WorkerHandle) -> None:
        """Join a worker with bounded waits, escalating to SIGKILL."""
        proc = handle.proc
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass

    def _fail(self, node_id: int, reason: str) -> None:
        """Declare one worker dead: reap, invalidate, raise typed error.

        Dropping ``_synced_epoch`` forces the next :meth:`sync` to
        respawn the worker and reload its chunks, so a transient kill
        self-heals on the following query.
        """
        handle = self._workers.pop(node_id, None)
        if handle is not None:
            self._drain_conn(handle)
            self._reap(handle)
        self._loaded = {
            ref: owner
            for ref, owner in self._loaded.items()
            if owner[0] != node_id
        }
        self._synced_epoch = -1
        raise WorkerFailedError(node_id, reason)

    # -- request plumbing ----------------------------------------------
    def _post(self, node_id: int, msg: dict) -> int:
        """Send one request; returns the sequence its reply must echo."""
        handle = self._workers.get(node_id)
        if handle is None or not handle.proc.is_alive():
            dispose_frame(msg.get("frame"))
            self._fail(node_id, "no live worker process")
        handle.seq += 1
        msg["seq"] = handle.seq
        try:
            handle.conn.send(msg)
        except (OSError, ValueError, BrokenPipeError) as exc:
            dispose_frame(msg.get("frame"))
            self._fail(node_id, f"control pipe send failed: {exc!r}")
        return handle.seq

    def _collect(self, node_id: int, seq: int) -> dict:
        """Receive the reply matching ``seq``, discarding stale ones."""
        handle = self._workers.get(node_id)
        if handle is None:
            self._fail(node_id, "worker lost before reply")
        deadline = time.monotonic() + self.request_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not handle.conn.poll(max(remaining, 0)):
                self._fail(
                    node_id,
                    f"no reply within {self.request_timeout:.1f}s "
                    "(worker hung or overloaded)",
                )
            try:
                reply = handle.conn.recv()
            except (EOFError, OSError) as exc:
                self._fail(node_id, f"control pipe closed: {exc!r}")
            if not isinstance(reply, dict):
                self._fail(node_id, f"malformed reply {type(reply)!r}")
            if reply.get("seq") != seq:  # abandoned earlier exchange
                dispose_frame(reply.get("frame"))
                continue
            if reply.get("status") != "ok":
                raise ClusterError(
                    f"worker op failed on node {node_id}: "
                    f"{reply.get('error')}"
                )
            return reply

    def _request(self, node_id: int, msg: dict) -> dict:
        op = msg["op"]
        sent = 0
        if isinstance(msg.get("frame"), dict):
            sent = int(msg["frame"].get("nbytes", 0))
        started = time.perf_counter()
        seq = self._post(node_id, msg)
        reply = self._collect(node_id, seq)
        received = 0
        if isinstance(reply.get("frame"), dict):
            received = int(reply["frame"].get("nbytes", 0))
        self.request_log.append({
            "node": node_id,
            "op": op,
            "bytes": sent + received,
            "seconds": time.perf_counter() - started,
            "worker_seconds": float(reply.get("worker_seconds", 0.0)),
        })
        return reply

    def drain_request_log(self) -> List[dict]:
        """Return and clear the per-request timing records."""
        with self._lock, lockdep.held("transport"):
            log, self.request_log = self.request_log, []
            return log

    # -- catalog sync (scatter) ----------------------------------------
    def sync(self, cluster) -> None:
        """Mirror the cluster's chunk placement onto the worker fleet.

        Diffs the catalog's desired state against what the workers hold
        (keyed by catalog epoch — unchanged epochs return immediately):
        relocated or replaced chunks are evicted from their old owner
        and loaded onto the new one, retired chunks are evicted, new
        chunks scattered.  Chunk payloads ship as one shared-memory
        frame per destination node.
        """
        with self._lock, lockdep.held("transport"):
            catalog = cluster.catalog
            node_ids = tuple(cluster.node_ids)
            epoch = catalog.epoch
            if (
                epoch == self._synced_epoch
                and node_ids == self._synced_nodes
            ):
                return
            self.ensure_workers(node_ids)
            desired: Dict[object, Tuple[int, object]] = {}
            for array in catalog.arrays():
                for chunk, node in catalog.pairs_of_array(array):
                    desired[chunk.ref()] = (node, chunk)
            evicts: Dict[int, List[object]] = {}
            loads: Dict[int, List[Tuple[object, object]]] = {}
            for ref, (node, chunk) in desired.items():
                current = self._loaded.get(ref)
                if (
                    current is not None
                    and current[0] == node
                    and current[1] is chunk
                ):
                    continue
                if current is not None and current[0] != node:
                    evicts.setdefault(current[0], []).append(ref)
                loads.setdefault(node, []).append((ref, chunk))
            for ref, (node, _chunk) in self._loaded.items():
                if ref not in desired:
                    evicts.setdefault(node, []).append(ref)
            for node, refs in sorted(evicts.items()):
                for ref in refs:
                    self._loaded.pop(ref, None)
                if node in self._workers:
                    self._request(
                        node, {"op": "evict", "refs": refs}
                    )
            for node, items in sorted(loads.items()):
                arrays: Dict[str, np.ndarray] = {}
                refs = []
                for i, (ref, chunk) in enumerate(items):
                    coords, attrs = chunk.payload_parts()
                    arrays[f"{i}:c"] = coords
                    for name, column in attrs.items():
                        arrays[f"{i}:a:{name}"] = column
                    refs.append(ref)
                self._request(
                    node,
                    {
                        "op": "load",
                        "refs": refs,
                        "frame": pack_frame(arrays),
                    },
                )
                for ref, chunk in items:
                    self._loaded[ref] = (node, chunk)
            self._synced_epoch = epoch
            self._synced_nodes = node_ids

    # -- gather --------------------------------------------------------
    def gather_pairs(
        self,
        pairs: Sequence[Tuple[object, int]],
        attrs: Sequence[str],
        ndim: int = 0,
    ) -> Optional[Tuple[np.ndarray, Dict[str, np.ndarray]]]:
        """Collect a (chunk, node) pair list from the workers.

        Returns the same ``(coords, values)`` table — byte for byte —
        as :func:`repro.core.catalog.concat_payload` over the pairs'
        chunks, or ``None`` when any pair's payload handle is not the
        one currently loaded (a pinned snapshot older than the synced
        epoch): the caller then answers from its frozen handles, and
        :attr:`stale_fallbacks` counts the event.

        Raises
        ------
        WorkerFailedError
            When an owning worker is dead, hung, or unreachable.
        """
        attrs = list(attrs)
        with self._lock, lockdep.held("transport"):
            if not pairs:
                return (
                    np.empty((0, ndim), dtype=np.int64),
                    {a: np.empty(0) for a in attrs},
                )
            plan: Dict[int, List[Tuple[int, object]]] = {}
            for pos, (chunk, node) in enumerate(pairs):
                ref = chunk.ref()
                current = self._loaded.get(ref)
                if (
                    current is None
                    or current[0] != node
                    or current[1] is not chunk
                ):
                    self.stale_fallbacks += 1
                    return None
                plan.setdefault(node, []).append((pos, ref))
            posted: List[Tuple[int, int]] = []
            for node in sorted(plan):
                refs = [ref for _pos, ref in plan[node]]
                started = time.perf_counter()
                seq = self._post(
                    node,
                    {"op": "gather", "refs": refs, "attrs": attrs},
                )
                posted.append((node, seq, started))
            coords_parts: List[Optional[np.ndarray]] = [None] * len(pairs)
            value_parts: Dict[str, List[Optional[np.ndarray]]] = {
                a: [None] * len(pairs) for a in attrs
            }
            for node, seq, started in posted:
                reply = self._collect(node, seq)
                arrays = unpack_frame(reply["frame"])
                self.request_log.append({
                    "node": node,
                    "op": "gather",
                    "bytes": int(reply.get("bytes", 0)),
                    "seconds": time.perf_counter() - started,
                    "worker_seconds": float(
                        reply.get("worker_seconds", 0.0)
                    ),
                })
                for i, (pos, _ref) in enumerate(plan[node]):
                    coords_parts[pos] = arrays[f"{i}:c"]
                    for a in attrs:
                        value_parts[a][pos] = arrays[f"{i}:a:{a}"]
            coords = np.concatenate(coords_parts, axis=0)
            values = {
                a: np.concatenate(value_parts[a]) for a in attrs
            }
            return coords, values

    # -- blob scratch space (exchanges + calibration) ------------------
    def store_blob(self, node_id: int, name: str, array) -> int:
        """Ship one array into a worker's blob namespace; bytes sent."""
        arr = np.ascontiguousarray(array)
        with self._lock, lockdep.held("transport"):
            self._request(
                node_id,
                {
                    "op": "store_blob",
                    "name": name,
                    "frame": pack_frame({"x": arr}),
                },
            )
        return int(arr.nbytes)

    def fetch_blob(self, node_id: int, name: str) -> np.ndarray:
        """Pull one blob back from a worker."""
        with self._lock, lockdep.held("transport"):
            reply = self._request(
                node_id, {"op": "fetch_blob", "name": name}
            )
            return unpack_frame(reply["frame"])["x"]

    def relay_blob(
        self,
        src_node: int,
        name: str,
        dst_node: int,
        dst_name: str,
    ) -> int:
        """Move a blob between workers through the coordinator.

        One fetch + one store — the wire pattern of a shuffle leg; the
        calibration harness times it against two network charges.
        """
        with self._lock, lockdep.held("transport"):
            arr = self.fetch_blob(src_node, name)
            self.store_blob(dst_node, dst_name, arr)
            return int(arr.nbytes)

    def drop_blobs(self, node_id: int, names: Sequence[str]) -> None:
        with self._lock, lockdep.held("transport"):
            if node_id in self._workers:
                self._request(
                    node_id, {"op": "drop_blob", "names": list(names)}
                )

    # -- shuffle exchanges ---------------------------------------------
    def partitioned_kmeans(
        self,
        parts: Sequence[Tuple[int, np.ndarray]],
        k: int,
        iterations: int,
        seed: int,
    ) -> np.ndarray:
        """Lloyd's k-means with a per-iteration partial-sums exchange.

        Scatters each partition to its node, broadcasts centroids each
        sweep, and reduces per-partition sums/counts in partition order
        — bit-identical to :func:`serial_kmeans` over the same parts.
        """
        with self._lock, lockdep.held("transport"):
            self.ensure_workers(sorted({n for n, _ in parts}))
            names = []
            for i, (node, pts) in enumerate(parts):
                name = f"_km:{i}"
                self.store_blob(node, name, np.asarray(pts))
                names.append((node, name))
            centroids = kernels.kmeans_init(
                np.concatenate([np.asarray(p) for _, p in parts], axis=0),
                k,
                seed,
            )
            try:
                for _ in range(iterations):
                    posted = []
                    for node, name in names:
                        seq = self._post(node, {
                            "op": "kmeans_partials",
                            "name": name,
                            "frame": pack_frame(
                                {"centroids": centroids}
                            ),
                        })
                        posted.append((node, seq))
                    partials = []
                    for node, seq in posted:
                        reply = self._collect(node, seq)
                        arrays = unpack_frame(reply["frame"])
                        partials.append(
                            (arrays["sums"], arrays["counts"])
                        )
                    centroids = kernels.kmeans_combine(
                        centroids, partials
                    )
            finally:
                for node, name in names:
                    if node in self._workers:
                        self.drop_blobs(node, [name])
            return centroids

    def partitioned_knn_mean(
        self,
        parts: Sequence[Tuple[int, np.ndarray]],
        queries: np.ndarray,
        k: int,
    ) -> np.ndarray:
        """kNN mean distance via a k-smallest-candidates exchange."""
        queries = np.asarray(queries)
        with self._lock, lockdep.held("transport"):
            self.ensure_workers(sorted({n for n, _ in parts}))
            names = []
            for i, (node, pts) in enumerate(parts):
                name = f"_knn:{i}"
                self.store_blob(node, name, np.asarray(pts))
                names.append((node, name))
            try:
                posted = []
                for node, name in names:
                    seq = self._post(node, {
                        "op": "knn_partials",
                        "name": name,
                        "k": int(k),
                        "frame": pack_frame({"queries": queries}),
                    })
                    posted.append((node, seq))
                partials = []
                for node, seq in posted:
                    reply = self._collect(node, seq)
                    arrays = unpack_frame(reply["frame"])
                    partials.append((arrays["cand"], arrays["counts"]))
            finally:
                for node, name in names:
                    if node in self._workers:
                        self.drop_blobs(node, [name])
            return kernels.knn_combine(partials, int(k))

    def partitioned_equi_join(
        self,
        parts_a: Sequence[Tuple[int, np.ndarray]],
        parts_b: Sequence[Tuple[int, np.ndarray]],
    ) -> np.ndarray:
        """Hash-shuffled equi-join on int64 keys.

        Each side's partitions split into per-destination hash buckets
        on their owning workers; the buckets physically move to their
        destination nodes (coordinator-relayed, like a real repartition
        exchange); each destination intersects its co-hashed buckets
        locally.  Returns the sorted distinct matching keys.
        """
        nodes = sorted(
            {n for n, _ in parts_a} | {n for n, _ in parts_b}
        )
        if not nodes:
            return np.empty(0, dtype=np.int64)
        buckets = len(nodes)
        with self._lock, lockdep.held("transport"):
            self.ensure_workers(nodes)
            scratch: Dict[int, List[str]] = {n: [] for n in nodes}
            try:
                shuffled: Dict[str, Dict[int, List[str]]] = {}
                for side, parts in (("a", parts_a), ("b", parts_b)):
                    arrived: Dict[int, List[str]] = {
                        n: [] for n in nodes
                    }
                    for i, (node, keys) in enumerate(parts):
                        src_name = f"_j{side}:{i}"
                        self.store_blob(
                            node,
                            src_name,
                            np.asarray(keys, dtype=np.int64),
                        )
                        scratch[node].append(src_name)
                        reply = self._request(node, {
                            "op": "join_split",
                            "name": src_name,
                            "buckets": buckets,
                        })
                        parts_out = unpack_frame(reply["frame"])
                        for b, target in enumerate(nodes):
                            dst_name = f"_j{side}:{i}:@{target}"
                            self.store_blob(
                                target, dst_name, parts_out[f"b{b}"]
                            )
                            scratch[target].append(dst_name)
                            arrived[target].append(dst_name)
                    shuffled[side] = arrived
                per_node = []
                for target in nodes:
                    reply = self._request(target, {
                        "op": "join_local",
                        "a_names": shuffled["a"][target],
                        "b_names": shuffled["b"][target],
                    })
                    per_node.append(
                        unpack_frame(reply["frame"])["keys"]
                    )
            finally:
                for node, names in scratch.items():
                    if names and node in self._workers:
                        self.drop_blobs(node, names)
            return np.sort(kernels.concat_keys(per_node))


# ----------------------------------------------------------------------
# serial in-process twins (parity oracles for the exchanges)
# ----------------------------------------------------------------------
def serial_kmeans(
    parts: Sequence[Tuple[int, np.ndarray]],
    k: int,
    iterations: int,
    seed: int,
) -> np.ndarray:
    """In-process twin of :meth:`ProcessEngine.partitioned_kmeans`."""
    pts_parts = [np.asarray(p) for _, p in parts]
    centroids = kernels.kmeans_init(
        np.concatenate(pts_parts, axis=0), k, seed
    )
    for _ in range(iterations):
        partials = [
            kernels.kmeans_partials(p, centroids) for p in pts_parts
        ]
        centroids = kernels.kmeans_combine(centroids, partials)
    return centroids


def serial_knn_mean(
    parts: Sequence[Tuple[int, np.ndarray]],
    queries: np.ndarray,
    k: int,
) -> np.ndarray:
    """In-process twin of :meth:`ProcessEngine.partitioned_knn_mean`."""
    queries = np.asarray(queries)
    partials = [
        kernels.knn_partials(np.asarray(p), queries, int(k))
        for _, p in parts
    ]
    return kernels.knn_combine(partials, int(k))


def serial_equi_join(
    parts_a: Sequence[Tuple[int, np.ndarray]],
    parts_b: Sequence[Tuple[int, np.ndarray]],
) -> np.ndarray:
    """In-process twin of :meth:`ProcessEngine.partitioned_equi_join`."""
    nodes = sorted({n for n, _ in parts_a} | {n for n, _ in parts_b})
    if not nodes:
        return np.empty(0, dtype=np.int64)
    buckets = len(nodes)
    splits_a = [
        kernels.join_split(np.asarray(keys, dtype=np.int64), buckets)
        for _, keys in parts_a
    ]
    splits_b = [
        kernels.join_split(np.asarray(keys, dtype=np.int64), buckets)
        for _, keys in parts_b
    ]
    per_node = []
    for b in range(buckets):
        side_a = kernels.concat_keys([s[b] for s in splits_a])
        side_b = kernels.concat_keys([s[b] for s in splits_b])
        per_node.append(kernels.join_local(side_a, side_b))
    return np.sort(kernels.concat_keys(per_node))
