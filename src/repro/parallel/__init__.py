"""Process-parallel execution backend (``REPRO_EXEC=process``).

Every simulated :class:`~repro.cluster.node.Node` gains a real worker
process; chunk payloads ship over :mod:`multiprocessing.shared_memory`
frames and a pickle-framed control pipe carries requests.  The engine
(:class:`~repro.parallel.engine.ProcessEngine`) keeps the workers'
resident chunk sets in sync with the cluster's chunk catalog and serves
real scatter/gather plus the k-means / kNN / join shuffle exchanges.
The classic in-process engine stays on as the parity oracle — results
are byte-identical across backends — and the calibration harness
(:mod:`~repro.parallel.calibrate`) fits :class:`CostParameters` rates
from measured worker wall-clock.
"""

from repro.parallel.calibrate import CalibrationResult, calibrate
from repro.parallel.engine import (
    ProcessEngine,
    serial_equi_join,
    serial_kmeans,
    serial_knn_mean,
)

__all__ = [
    "CalibrationResult",
    "ProcessEngine",
    "calibrate",
    "serial_equi_join",
    "serial_kmeans",
    "serial_knn_mean",
]
