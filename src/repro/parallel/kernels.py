"""Per-partition exchange kernels shared by workers and serial twins.

The process backend's shuffle exchanges (k-means, kNN, equi-join) split
each operator into a **per-partition kernel** (runs inside a worker over
that node's slice) and a **combine step** (runs on the coordinator over
the partials, in node order).  The serial in-process twins in
:mod:`repro.parallel.engine` call these *same* functions over the same
slices in the same order, so the two execution backends agree
bit-for-bit — float reductions reassociate identically because the
partial/combine split is literally shared code.  Against the monolithic
:mod:`repro.query.operators` kernels the split reassociates sums, so
cross-checks there are ``allclose``, not byte equality.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


# ----------------------------------------------------------------------
# k-means (Lloyd's, partial-sums exchange)
# ----------------------------------------------------------------------
def kmeans_init(points: np.ndarray, k: int, seed: int) -> np.ndarray:
    """Seeded centroid draw, matching :func:`repro.query.operators.kmeans`."""
    k = min(k, points.shape[0])
    rng = np.random.default_rng(seed)
    return points[
        rng.choice(points.shape[0], size=k, replace=False)
    ].astype(np.float64)


def kmeans_partials(
    pts: np.ndarray, centroids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """One partition's Lloyd partials: per-cluster sums and counts.

    Uses the same ``|x|² - 2x·c + |c|²`` assignment expansion and
    per-dimension ``bincount`` accumulation as the batch kernel, so a
    single-partition run reproduces it exactly.
    """
    k = centroids.shape[0]
    pts = pts.astype(np.float64)
    pts_sq = (pts * pts).sum(axis=1)
    cent_sq = (centroids * centroids).sum(axis=1)
    dists_sq = pts_sq[:, None] - 2.0 * (pts @ centroids.T)
    dists_sq += cent_sq[None, :]
    labels = dists_sq.argmin(axis=1)
    counts = np.bincount(labels, minlength=k)
    sums = np.stack(
        [
            np.bincount(labels, weights=pts[:, d], minlength=k)
            for d in range(pts.shape[1])
        ],
        axis=1,
    )
    return sums, counts


def kmeans_combine(
    centroids: np.ndarray,
    partials: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Fold per-partition Lloyd partials into the next centroid set.

    Partials are summed in the order given (node order) — the twin and
    the process engine must present them identically.
    """
    sums = np.zeros_like(centroids)
    counts = np.zeros(centroids.shape[0], dtype=np.int64)
    for part_sums, part_counts in partials:
        sums += part_sums
        counts += part_counts
    nonempty = counts > 0
    out = centroids.copy()
    out[nonempty] = sums[nonempty] / counts[nonempty, None]
    return out


# ----------------------------------------------------------------------
# kNN mean distance (k-smallest-candidates exchange)
# ----------------------------------------------------------------------
def knn_partials(
    pts: np.ndarray, queries: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """One partition's kNN candidates per query.

    Returns ``(cand, counts)``: each query's ``k`` smallest positive
    squared distances into this partition, ascending and padded with
    ``inf`` when fewer exist, plus the usable-neighbour count.  Squared
    distances accumulate per dimension exactly like the batch kernel.
    """
    nq = queries.shape[0]
    if pts.shape[0] == 0 or nq == 0:
        return (
            np.full((nq, k), np.inf),
            np.zeros(nq, dtype=np.int64),
        )
    pts = pts.astype(np.float64)
    qs = queries.astype(np.float64)
    d2 = np.zeros((nq, pts.shape[0]))
    for d in range(pts.shape[1]):
        diff = pts[None, :, d] - qs[:, None, d]
        diff *= diff
        d2 += diff
    usable = d2 > 0
    counts = usable.sum(axis=1)
    d2 = np.where(usable, d2, np.inf)
    cand = np.sort(d2, axis=1)[:, :k]
    if cand.shape[1] < k:
        pad = np.full((nq, k - cand.shape[1]), np.inf)
        cand = np.concatenate([cand, pad], axis=1)
    return cand, counts


def knn_combine(
    partials: Sequence[Tuple[np.ndarray, np.ndarray]], k: int
) -> np.ndarray:
    """Merge per-partition kNN candidates into mean k-NN distances.

    The global ``k`` smallest positive distances per query are exactly
    the ``k`` smallest of the union of per-partition candidate sets, so
    the merge is one sort over ``partitions × k`` columns.  ``nan``
    where a query has no positive-distance neighbour anywhere.
    """
    cand = np.concatenate([c for c, _ in partials], axis=1)
    counts = np.zeros(cand.shape[0], dtype=np.int64)
    for _c, part_counts in partials:
        counts += part_counts
    cand = np.sort(cand, axis=1)[:, :k]
    take = np.minimum(k, counts)
    dists = np.sqrt(cand)
    mask = np.arange(k)[None, :] < take[:, None]
    out = np.where(mask, dists, 0.0).sum(axis=1)
    out /= np.maximum(take, 1)
    out[take == 0] = np.nan
    return out


# ----------------------------------------------------------------------
# equi-join (hash-shuffle exchange)
# ----------------------------------------------------------------------
def join_split(keys: np.ndarray, buckets: int) -> List[np.ndarray]:
    """Hash-partition a key column into per-destination buckets."""
    keys = np.asarray(keys, dtype=np.int64)
    h = np.mod(keys, buckets)
    return [keys[h == b] for b in range(buckets)]


def concat_keys(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate key buckets (empty-safe, int64)."""
    parts = [np.asarray(p, dtype=np.int64) for p in parts]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def join_local(keys_a: np.ndarray, keys_b: np.ndarray) -> np.ndarray:
    """Sorted distinct keys present on both sides of one bucket."""
    return np.intersect1d(
        np.asarray(keys_a, dtype=np.int64),
        np.asarray(keys_b, dtype=np.int64),
    )
