"""Worker-process request loop for the process-parallel backend.

One worker backs one simulated node.  It holds that node's resident
chunk payloads (coordinate table + attribute columns per chunk, loaded
by the engine's catalog sync) and a scratch **blob** namespace used by
the shuffle exchanges and the calibration harness.  The control pipe
carries pickled request dicts in, ``{"status": "ok" | "error", ...}``
reply dicts out; bulk array payloads ride shared-memory frames
(:mod:`repro.parallel.transport`).

Every reply carries ``worker_seconds`` — the wall-clock the worker
spent handling the request — which the calibration harness correlates
against :class:`~repro.cluster.costs.CostParameters` charges.

Application errors (unknown chunk, bad blob name) are reported in-band
as ``status: "error"`` replies; only a broken pipe ends the loop.  The
``sleep`` op exists for the hung-worker failure tests: it stalls the
reply past the engine's request timeout on demand.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

import numpy as np

from repro.parallel import kernels
from repro.parallel.transport import frame_nbytes, pack_frame, unpack_frame

#: attribute-column frame key prefix (per chunk index within a batch).
_ATTR = "a"


def _chunk_frames(index: int, coords, attrs) -> Dict[str, np.ndarray]:
    out = {f"{index}:c": coords}
    for name, column in attrs.items():
        out[f"{index}:{_ATTR}:{name}"] = column
    return out


def worker_main(conn, node_id: int) -> None:
    """Serve requests for one node until shutdown or pipe loss."""
    chunks: Dict[object, Tuple[np.ndarray, Dict[str, np.ndarray]]] = {}
    blobs: Dict[str, np.ndarray] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        op = msg.get("op")
        seq = msg.get("seq")
        started = time.perf_counter()
        try:
            reply = _handle(op, msg, node_id, chunks, blobs)
        except Exception as exc:  # app error: report in-band, stay alive
            try:
                conn.send({
                    "status": "error",
                    "seq": seq,
                    "error": f"{type(exc).__name__}: {exc}",
                })
            except (OSError, BrokenPipeError):
                return
            continue
        reply["status"] = "ok"
        reply["seq"] = seq
        reply["worker_seconds"] = time.perf_counter() - started
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            return
        if op == "shutdown":
            return


def _handle(op, msg, node_id, chunks, blobs) -> dict:
    if op == "ping":
        return {"node": node_id}
    if op == "sleep":  # failure-test hook: stall past the timeout
        time.sleep(float(msg["seconds"]))
        return {}
    if op == "load":
        arrays = unpack_frame(msg["frame"])
        for i, ref in enumerate(msg["refs"]):
            coords = arrays[f"{i}:c"]
            prefix = f"{i}:{_ATTR}:"
            attrs = {
                key[len(prefix):]: arr
                for key, arr in arrays.items()
                if key.startswith(prefix)
            }
            chunks[ref] = (coords, attrs)
        return {"resident": len(chunks)}
    if op == "evict":
        for ref in msg["refs"]:
            chunks.pop(ref, None)
        return {"resident": len(chunks)}
    if op == "gather":
        frames: Dict[str, np.ndarray] = {}
        for i, ref in enumerate(msg["refs"]):
            if ref not in chunks:
                raise KeyError(f"chunk {ref} not resident on node {node_id}")
            coords, attrs = chunks[ref]
            frames[f"{i}:c"] = coords
            for name in msg["attrs"]:
                if name not in attrs:
                    raise KeyError(
                        f"chunk {ref} has no attribute {name!r}"
                    )
                frames[f"{i}:{_ATTR}:{name}"] = attrs[name]
        return {"frame": pack_frame(frames), "bytes": frame_nbytes(frames)}
    if op == "store_blob":
        arrays = unpack_frame(msg["frame"])
        blobs[msg["name"]] = arrays["x"]
        return {"bytes": int(arrays["x"].nbytes)}
    if op == "fetch_blob":
        blob = blobs[msg["name"]]
        return {"frame": pack_frame({"x": blob}), "bytes": int(blob.nbytes)}
    if op == "drop_blob":
        for name in msg["names"]:
            blobs.pop(name, None)
        return {}
    if op == "kmeans_partials":
        centroids = unpack_frame(msg["frame"])["centroids"]
        sums, counts = kernels.kmeans_partials(
            blobs[msg["name"]], centroids
        )
        return {"frame": pack_frame({"sums": sums, "counts": counts})}
    if op == "knn_partials":
        queries = unpack_frame(msg["frame"])["queries"]
        cand, counts = kernels.knn_partials(
            blobs[msg["name"]], queries, int(msg["k"])
        )
        return {"frame": pack_frame({"cand": cand, "counts": counts})}
    if op == "join_split":
        parts = kernels.join_split(
            blobs[msg["name"]], int(msg["buckets"])
        )
        frames = {f"b{i}": part for i, part in enumerate(parts)}
        return {"frame": pack_frame(frames)}
    if op == "join_local":
        side_a = kernels.concat_keys(
            [blobs[name] for name in msg["a_names"]]
        )
        side_b = kernels.concat_keys(
            [blobs[name] for name in msg["b_names"]]
        )
        keys = kernels.join_local(side_a, side_b)
        return {"frame": pack_frame({"keys": keys})}
    if op == "stats":
        return {
            "node": node_id,
            "resident": len(chunks),
            "blobs": len(blobs),
        }
    if op == "shutdown":
        return {}
    raise ValueError(f"unknown op {op!r}")
