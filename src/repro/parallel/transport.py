"""Shared-memory numpy frames for the process-parallel backend.

A **frame** moves a named set of numpy arrays between the engine and a
worker.  The control pipe carries only a small picklable descriptor;
the array bytes travel one of three ways, chosen per frame:

``raw``
    All fixed-dtype arrays are packed back to back into **one**
    :class:`multiprocessing.shared_memory.SharedMemory` block; the
    descriptor records each array's ``(dtype, shape, offset)``.
``inline``
    Frames whose raw payload is tiny (≤ :data:`INLINE_MAX_BYTES`) skip
    shared memory entirely and ride the pipe as ``tobytes()`` blobs —
    a pipe round-trip is cheaper than segment setup at that size.
``pickle``
    Object-dtype arrays (chunk keys are plain int64, but schemas keep
    this honest) are pickled per array and sent inline.

Lifetime protocol — **the receiver unlinks**: the sender creates the
segment, copies its arrays in, closes its own mapping, *unregisters it
from its resource tracker* (ownership is leaving this process — without
the unregister the sender's tracker reports a phantom leak at exit),
and sends the name; the receiver attaches (which re-registers with the
receiver's tracker), copies the arrays out (dropping its view before
closing, so no ``BufferError``), then ``close()`` + ``unlink()`` — and
``unlink`` performs the matching unregister.  Register/unregister stay
balanced per tracker whether the two processes share one tracker (fork
after first use) or run their own, so a completed round trip leaves no
tracker entry and no ``/dev/shm`` residue.  :func:`dispose_frame`
reclaims a frame whose receiver died before consuming it.
"""

from __future__ import annotations

import pickle
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np
import numpy.typing as npt

#: Frames at or below this many raw payload bytes ride the pipe inline.
INLINE_MAX_BYTES = 16 * 1024


def frame_nbytes(arrays: Mapping[str, npt.NDArray[Any]]) -> int:
    """Total payload bytes a frame for ``arrays`` would carry."""
    return int(sum(np.asarray(a).nbytes for a in arrays.values()))


def pack_frame(
    arrays: Mapping[str, npt.NDArray[Any]]
) -> Dict[str, Any]:
    """Pack named arrays into a picklable frame descriptor.

    Fixed-dtype arrays share one segment (or go inline when small);
    object-dtype arrays are pickled.  The caller may send the returned
    descriptor over a pipe; ownership of any created segment passes to
    the receiver (see module docstring).
    """
    metas: List[Dict[str, Any]] = []
    raw: List[Tuple[str, npt.NDArray[Any]]] = []
    total = 0
    for name, arr in arrays.items():
        a = np.ascontiguousarray(arr)
        if a.dtype.hasobject:
            metas.append({
                "name": name,
                "kind": "pickle",
                "blob": pickle.dumps(a, protocol=pickle.HIGHEST_PROTOCOL),
            })
        else:
            raw.append((name, a))
            total += a.nbytes
    if total <= INLINE_MAX_BYTES:
        for name, a in raw:
            metas.append({
                "name": name,
                "kind": "inline",
                "dtype": a.dtype.str,
                "shape": a.shape,
                "blob": a.tobytes(),
            })
        return {"shm": None, "metas": metas, "nbytes": total}
    shm = shared_memory.SharedMemory(create=True, size=total)
    offset = 0
    try:
        for name, a in raw:
            if a.nbytes:
                dst = np.ndarray(
                    a.shape, dtype=a.dtype, buffer=shm.buf, offset=offset
                )
                dst[...] = a
                del dst
            metas.append({
                "name": name,
                "kind": "raw",
                "dtype": a.dtype.str,
                "shape": a.shape,
                "offset": offset,
            })
            offset += a.nbytes
    finally:
        shm.close()
        # Ownership transfers to the receiver with the send; drop the
        # sender-side tracker registration so neither tracker reports a
        # phantom leak (``shm._name`` is the registered spelling — the
        # ``name`` property strips the leading slash).
        registered_name: str = getattr(shm, "_name")
        resource_tracker.unregister(registered_name, "shared_memory")
    return {"shm": shm.name, "metas": metas, "nbytes": total}


def unpack_frame(frame: Mapping[str, Any]) -> Dict[str, npt.NDArray[Any]]:
    """Materialize a frame's arrays, consuming (unlinking) its segment.

    Every returned array owns its bytes — copies are taken before the
    shared segment is closed, so callers never hold a view into memory
    another process may reclaim.
    """
    out: Dict[str, npt.NDArray[Any]] = {}
    shm: Optional[shared_memory.SharedMemory] = None
    if frame["shm"] is not None:
        shm = shared_memory.SharedMemory(name=frame["shm"])
    try:
        for meta in frame["metas"]:
            kind = meta["kind"]
            if kind == "pickle":
                out[meta["name"]] = pickle.loads(meta["blob"])
            elif kind == "inline":
                arr = np.frombuffer(
                    meta["blob"], dtype=np.dtype(meta["dtype"])
                )
                out[meta["name"]] = arr.reshape(meta["shape"]).copy()
            else:
                assert shm is not None  # raw metas imply a segment
                view = np.ndarray(
                    meta["shape"],
                    dtype=np.dtype(meta["dtype"]),
                    buffer=shm.buf,
                    offset=meta["offset"],
                )
                out[meta["name"]] = view.copy()
                del view
    finally:
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - racing unlink
                pass
    return out


def dispose_frame(frame: object) -> None:
    """Best-effort reclaim of an unconsumed frame's shared segment.

    Used when a worker dies with frames still in flight: attaching and
    unlinking drops the segment whether or not the dead process ever
    mapped it.  Already-consumed (or malformed) frames are ignored.
    """
    if not isinstance(frame, dict) or frame.get("shm") is None:
        return
    try:
        shm = shared_memory.SharedMemory(name=frame["shm"])
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - racing unlink
        pass
