"""Quickstart: an elastic array database in ~60 lines.

Builds a two-node cluster partitioned by a K-d tree, ingests a few daily
batches of a synthetic satellite workload, lets the leading staircase add
hardware as the store grows, and runs a couple of queries.

Run:  python examples/quickstart.py
"""

from repro import (
    GB,
    ElasticCluster,
    LeadingStaircase,
    ModisWorkload,
    make_partitioner,
)
from repro.query import ModisJoinNdvi, ModisSelection


def main() -> None:
    # A small MODIS-shaped workload: 6 daily cycles, ~270 GB modeled.
    workload = ModisWorkload(
        n_cycles=6, cells_per_band_per_cycle=600, target_total_gb=270.0
    )

    # Partitioner: skew-aware K-d tree over the chunk grid, splitting the
    # spatial dimensions (longitude, latitude) and leaving time whole.
    partitioner = make_partitioner(
        "kd_tree",
        nodes=[0, 1],
        grid=workload.grid_box(),
        spatial_dims=workload.spatial_dims(),
    )

    # Provisioner: the paper's PD control loop — 2 samples of history,
    # plan 2 cycles ahead, 100 GB nodes.
    cluster = ElasticCluster(
        partitioner,
        node_capacity_bytes=100 * GB,
        provisioner=LeadingStaircase(
            node_capacity=100 * GB, samples=2, planning_cycles=2
        ),
    )

    print(f"workload: {workload}")
    print(f"initial cluster: {cluster.node_count} nodes\n")

    for cycle in range(1, workload.n_cycles + 1):
        batch = workload.batch(cycle)
        report = cluster.ingest(batch.chunks)
        line = (
            f"cycle {cycle}: +{batch.total_bytes / GB:5.1f} GB in "
            f"{report.insert_seconds / 60:5.2f} min"
        )
        if report.nodes_added:
            line += (
                f" | scaled out +{report.nodes_added} nodes, moved "
                f"{report.rebalance.bytes_moved / GB:.1f} GB in "
                f"{report.reorg_seconds / 60:.2f} min"
            )
        print(line)

    print(
        f"\nfinal cluster: {cluster.node_count} nodes, "
        f"{cluster.total_bytes / GB:.0f} GB stored, storage RSD "
        f"{cluster.storage_rsd() * 100:.1f}%"
    )

    # Two of the paper's benchmark queries, computed for real, reading
    # through an epoch-pinned session (the sanctioned query surface).
    session = cluster.session()
    selection = ModisSelection(workload).run(session, workload.n_cycles)
    join = ModisJoinNdvi(workload).run(session, workload.n_cycles)
    print(
        f"\nselection (1/16 corner): {selection.value['cells']} cells in "
        f"{selection.elapsed_seconds:.1f} simulated s"
    )
    print(
        f"vegetation-index join:   mean NDVI "
        f"{join.value['mean_ndvi']:.3f} over {join.value['cells']} "
        f"pixels in {join.elapsed_seconds:.1f} simulated s"
    )

    cluster.check_consistency()
    print("\ncluster consistency verified ✓")


if __name__ == "__main__":
    main()
