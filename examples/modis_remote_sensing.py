"""Remote-sensing scenario: daily satellite ingest with science queries.

Walks the paper's MODIS use case (§3.1, §3.3): two bands of visible-light
measurements arrive daily, the store grows monotonically, and scientists
"cook" the newest data into products — a vegetation index (NDVI) join, a
deforestation model (k-means over the Amazon basin), and a smoothed
image (windowed aggregate).

Run:  python examples/modis_remote_sensing.py
"""

from repro import GB, RunConfig
from repro.harness import ExperimentRunner
from repro.query import (
    ModisJoinNdvi,
    ModisKMeans,
    ModisRollingAverage,
    ModisWindowAggregate,
)
from repro.workloads import ModisWorkload


def main() -> None:
    workload = ModisWorkload(
        n_cycles=10, cells_per_band_per_cycle=1200,
        target_total_gb=450.0,
    )
    runner = ExperimentRunner(
        workload,
        RunConfig(partitioner="incremental_quadtree", run_queries=False),
    )

    print("ingesting 10 days of two-band imagery...\n")
    for cycle in range(1, workload.n_cycles + 1):
        metrics = runner.run_cycle(cycle)
        print(
            f"day {cycle:2d}: store {metrics.demand_bytes / GB:5.0f} GB "
            f"on {metrics.nodes} nodes (RSD "
            f"{metrics.storage_rsd * 100:4.1f}%)"
        )

    cluster = runner.cluster
    last = workload.n_cycles
    print("\nscience pass over the newest data:")

    # One epoch-pinned session for the whole science pass: every query
    # reads the same frozen view of the ingested arrays.
    session = cluster.session()
    join = ModisJoinNdvi(workload).run(session, last)
    print(
        f"  NDVI join: mean index {join.value['mean_ndvi']:.3f} over "
        f"{join.value['cells']} pixels "
        f"({join.elapsed_seconds / 60:.2f} simulated min)"
    )

    polar = ModisRollingAverage(workload, days=3).run(session, last)
    days = polar.value["daily_polar_radiance"]
    if days:
        latest_day = max(days)
        print(
            f"  polar rolling average: day {latest_day} radiance "
            f"{days[latest_day]:.1f} "
            f"({polar.elapsed_seconds / 60:.2f} simulated min)"
        )

    kmeans = ModisKMeans(workload, k=4).run(session, last)
    print(
        f"  Amazon k-means: {kmeans.value['points']} NDVI points, "
        f"{len(kmeans.value['centroids'])} clusters, mean residual "
        f"{kmeans.value['mean_residual'] and round(kmeans.value['mean_residual'], 2)} "
        f"({kmeans.elapsed_seconds / 60:.2f} simulated min)"
    )

    window = ModisWindowAggregate(workload).run(session, last)
    print(
        f"  windowed NDVI image: {window.value['windows']} output "
        f"windows, {window.network_bytes / GB:.2f} GB of halo exchange "
        f"({window.elapsed_seconds / 60:.2f} simulated min)"
    )

    print(
        "\nthe quadtree keeps each 12-degree region's days together, so "
        "the windowed aggregate's ghost cells rarely cross the network — "
        "re-run with partitioner='round_robin' to watch the halo bytes "
        "and latency grow."
    )


if __name__ == "__main__":
    main()
