"""Multiprocessing executor demo: real parallel chunk computation.

The simulator prices queries from modeled bytes, but the chunk operators
are genuine numpy computations — heavy ones can fan out across cores with
:func:`repro.query.map_chunks`.  This script computes per-chunk radiance
statistics for a MODIS day twice, inline and with a process pool, and
verifies both agree.

Run:  python examples/parallel_scan.py
"""

import time

import numpy as np

from repro.query import map_chunks
from repro.workloads import ModisWorkload


def chunk_stats(payload):
    """Per-chunk summary: (key, cells, mean, p95 radiance).

    Module-level so it pickles into pool workers.
    """
    key, values = payload
    # a deliberately non-trivial reduction
    smooth = np.convolve(
        np.sort(values), np.ones(5) / 5.0, mode="same"
    )
    return (
        key,
        int(values.size),
        float(values.mean()),
        float(np.quantile(smooth, 0.95)),
    )


def main() -> None:
    workload = ModisWorkload(
        n_cycles=2, cells_per_band_per_cycle=30000,
        target_total_gb=90.0,
    )
    batch = workload.batch(1)
    payloads = [
        (chunk.key, chunk.values("radiance"))
        for chunk in batch.chunks
        if chunk.schema.name == "band1"
    ]
    print(f"{len(payloads)} band-1 chunks, "
          f"{sum(p[1].size for p in payloads)} cells")

    t0 = time.perf_counter()
    inline = map_chunks(chunk_stats, payloads)
    t_inline = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = map_chunks(chunk_stats, payloads, processes=4)
    t_pool = time.perf_counter() - t0

    assert inline == pooled, "pool must compute identical results"
    busiest = max(inline, key=lambda s: s[1])
    print(f"busiest chunk {busiest[0]}: {busiest[1]} cells, "
          f"mean radiance {busiest[2]:.1f}")
    print(f"inline: {t_inline * 1e3:7.1f} ms")
    print(f"pool-4: {t_pool * 1e3:7.1f} ms  "
          "(pool pays fork+pickle overhead; it wins when per-chunk "
          "math dominates)")


if __name__ == "__main__":
    main()
