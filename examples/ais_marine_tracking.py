"""Marine-traffic scenario: partitioning 400 GB of skewed ship tracks.

Reproduces the paper's AIS story (§3.2, §6.2) end to end: ships congregate
around a handful of ports, so ~85 % of the bytes land in ~5 % of the
chunks.  The script runs the same growing-cluster schedule as the paper
(start at 2 nodes, +2 whenever capacity is hit) under four contrasting
partitioners and reports what skew does to each: storage balance, bytes
shuffled at scale-out, and the latency of a spatial (kNN) and a hot-region
(Houston selection) query.

Run:  python examples/ais_marine_tracking.py
"""

from repro import GB, RunConfig
from repro.harness import ExperimentRunner
from repro.workloads import AisWorkload

CONTENDERS = ("round_robin", "consistent_hash", "kd_tree", "append")


def main() -> None:
    workload = AisWorkload(
        n_cycles=8, ships=300, broadcasts_per_ship=12,
        target_total_gb=400.0,
    )

    # How skewed is the fleet?
    sizes = sorted(
        (c.size_bytes for b in workload.batches() for c in b.chunks),
        reverse=True,
    )
    top5 = sum(sizes[: max(1, len(sizes) // 20)]) / sum(sizes)
    print(
        f"dataset: {sum(sizes) / GB:.0f} GB in {len(sizes)} chunks; "
        f"top 5% of chunks hold {top5 * 100:.0f}% of the bytes\n"
    )

    print(
        f"{'partitioner':>16s} {'RSD':>7s} {'moved GB':>9s} "
        f"{'kNN min':>8s} {'Houston min':>12s} {'node-hrs':>9s}"
    )
    for name in CONTENDERS:
        runner = ExperimentRunner(workload, RunConfig(partitioner=name))
        metrics = runner.run()
        knn_minutes = sum(metrics.query_series("knn")) / 60
        houston_minutes = (
            metrics.query_seconds_by_name().get("ais_selection", 0.0) / 60
        )
        print(
            f"{name:>16s} {metrics.mean_storage_rsd * 100:6.1f}% "
            f"{metrics.total_bytes_moved / GB:9.1f} "
            f"{knn_minutes:8.1f} {houston_minutes:12.1f} "
            f"{metrics.workload_cost_node_hours:9.1f}"
        )

    print(
        "\nreading the table: round robin balances bytes best but pays "
        "remote-neighbourhood costs on every kNN probe; the K-d tree "
        "keeps each port's region on one host (fast spatial queries) at "
        "the price of coarser balance; append moves nothing at scale-out "
        "but serializes queries over the newest data."
    )


if __name__ == "__main__":
    main()
