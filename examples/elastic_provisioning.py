"""Tuning the leading staircase to a workload (paper §5.2, §6.3).

Demonstrates the full provisioning workflow:

1. observe a demand history,
2. fit the derivative window ``s`` with Algorithm 1's what-if analysis,
3. fit the planning horizon ``p`` with the analytical cost model,
4. replay the staircase under the tuned parameters and compare set points.

Run:  python examples/elastic_provisioning.py
"""

from repro import GB, ScaleOutCostModel, fit_sample_count
from repro.cluster import DEFAULT_COSTS
from repro.core.tuning import best_planning_cycles, best_sample_count
from repro.harness import figure8_staircase
from repro.workloads import AisWorkload, ModisWorkload


def main() -> None:
    modis = ModisWorkload(n_cycles=15, cells_per_band_per_cycle=600)
    ais = AisWorkload(n_cycles=10, ships=250, broadcasts_per_ship=10)

    # ------------------------------------------------------------------
    # Step 1+2: Algorithm 1 — how many samples should the derivative use?
    # ------------------------------------------------------------------
    print("what-if analysis of the sample count s (Algorithm 1):")
    for workload in (ais, modis):
        history = [d / GB for d in workload.demand_curve()]
        errors = fit_sample_count(history, max_samples=4)
        best = best_sample_count(errors)
        rendered = ", ".join(
            f"s={s}: {e:.1f} GB" for s, e in sorted(errors.items())
        )
        print(f"  {workload.name.upper():>5s}: {rendered}  -> pick s={best}")
    print(
        "  (AIS's seasonal quarters favour the freshest sample; MODIS's "
        "steady-but-noisy days favour averaging)\n"
    )

    # ------------------------------------------------------------------
    # Step 3: the Eqs. 5-9 cost model — how far ahead should a step plan?
    # ------------------------------------------------------------------
    history = [d / GB for d in modis.demand_curve()[:4]]
    mu = history[-1] - history[-2]
    model = ScaleOutCostModel(
        node_capacity=100.0,
        io_cost=DEFAULT_COSTS.io_seconds_per_gb / 3600.0,
        network_cost=DEFAULT_COSTS.network_seconds_per_gb / 3600.0,
        insert_rate=mu,
        initial_load=history[-1],
        initial_nodes=2,
        base_query_time=0.05,
    )
    costs = model.fit_planning_cycles([1, 2, 3, 4, 6], cycles=8)
    best_p = best_planning_cycles(costs)
    print("analytical cost of candidate planning horizons (node-hours):")
    for p, cost in sorted(costs.items()):
        marker = "  <- pick" if p == best_p else ""
        print(f"  p={p}: {cost:6.1f}{marker}")

    # ------------------------------------------------------------------
    # Step 4: replay the staircase (Figure 8) under three set points.
    # ------------------------------------------------------------------
    print("\nreplaying the staircase on MODIS (nodes per cycle):")
    result = figure8_staircase(modis, p_values=(1, best_p, 6), samples=4)
    print(result.render())
    print(f"scale-out events: {result.reorganizations}")


if __name__ == "__main__":
    main()
